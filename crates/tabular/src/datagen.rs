//! Seeded synthetic analogs of the paper's 23 benchmark datasets.
//!
//! The raw Kaggle / UCI / LibSVM / OpenML / AutoML files used in Table I are
//! not redistributable and not downloadable in this environment, so each
//! dataset is replaced by a generator with the *same row count, column count
//! and task type*, whose target is driven by **planted non-linear feature
//! interactions** — products, ratios, squares and log-composites of the
//! observable base features — plus linear signal and noise. The observable
//! columns are only the base features; a feature-transformation search must
//! rediscover the planted crossings to climb the metric, which is exactly
//! the capability the paper's experiments measure (DESIGN.md §1).

use crate::dataset::{Column, Dataset, TaskType};
use crate::rngx;
use crate::rngx::StdRng;

/// Static description of one benchmark dataset (one row of the paper's
/// Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as printed in Table I.
    pub name: &'static str,
    /// Original source archive (for documentation only).
    pub source: &'static str,
    /// Task family.
    pub task: TaskType,
    /// Sample count in the paper.
    pub rows: usize,
    /// Feature count in the paper.
    pub cols: usize,
    /// Class count for discrete tasks (2 for detection).
    pub n_classes: usize,
}

/// The benchmark datasets of Table I, with the paper's row/column counts.
/// (The paper's text says 23 datasets; Table I itself lists 24 rows —
/// 13 classification, 7 regression, 4 detection — and we follow the table.)
pub const PAPER_CATALOG: [DatasetSpec; 24] = [
    DatasetSpec {
        name: "alzheimers",
        source: "Kaggle",
        task: TaskType::Classification,
        rows: 2149,
        cols: 33,
        n_classes: 2,
    },
    DatasetSpec {
        name: "cardiovascular",
        source: "Kaggle",
        task: TaskType::Classification,
        rows: 5000,
        cols: 12,
        n_classes: 2,
    },
    DatasetSpec {
        name: "fetal_health",
        source: "Kaggle",
        task: TaskType::Classification,
        rows: 2126,
        cols: 22,
        n_classes: 3,
    },
    DatasetSpec {
        name: "pima_indian",
        source: "UCIrvine",
        task: TaskType::Classification,
        rows: 768,
        cols: 8,
        n_classes: 2,
    },
    DatasetSpec {
        name: "svmguide3",
        source: "LibSVM",
        task: TaskType::Classification,
        rows: 1243,
        cols: 21,
        n_classes: 2,
    },
    DatasetSpec {
        name: "amazon_employee",
        source: "Kaggle",
        task: TaskType::Classification,
        rows: 32769,
        cols: 9,
        n_classes: 2,
    },
    DatasetSpec {
        name: "german_credit",
        source: "UCIrvine",
        task: TaskType::Classification,
        rows: 1001,
        cols: 24,
        n_classes: 2,
    },
    DatasetSpec {
        name: "wine_quality_red",
        source: "UCIrvine",
        task: TaskType::Classification,
        rows: 999,
        cols: 12,
        n_classes: 4,
    },
    DatasetSpec {
        name: "wine_quality_white",
        source: "UCIrvine",
        task: TaskType::Classification,
        rows: 4898,
        cols: 12,
        n_classes: 4,
    },
    DatasetSpec {
        name: "jannis",
        source: "AutoML",
        task: TaskType::Classification,
        rows: 83733,
        cols: 55,
        n_classes: 4,
    },
    DatasetSpec {
        name: "adult",
        source: "AutoML",
        task: TaskType::Classification,
        rows: 34190,
        cols: 25,
        n_classes: 2,
    },
    DatasetSpec {
        name: "volkert",
        source: "AutoML",
        task: TaskType::Classification,
        rows: 58310,
        cols: 181,
        n_classes: 10,
    },
    DatasetSpec {
        name: "albert",
        source: "AutoML",
        task: TaskType::Classification,
        rows: 425240,
        cols: 79,
        n_classes: 2,
    },
    DatasetSpec {
        name: "openml_618",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 1000,
        cols: 50,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_589",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 1000,
        cols: 25,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_616",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 500,
        cols: 50,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_607",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 1000,
        cols: 50,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_620",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 1000,
        cols: 25,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_637",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 500,
        cols: 50,
        n_classes: 0,
    },
    DatasetSpec {
        name: "openml_586",
        source: "OpenML",
        task: TaskType::Regression,
        rows: 1000,
        cols: 25,
        n_classes: 0,
    },
    DatasetSpec {
        name: "wbc",
        source: "UCIrvine",
        task: TaskType::Detection,
        rows: 278,
        cols: 30,
        n_classes: 2,
    },
    DatasetSpec {
        name: "mammography",
        source: "OpenML",
        task: TaskType::Detection,
        rows: 11183,
        cols: 6,
        n_classes: 2,
    },
    DatasetSpec {
        name: "thyroid",
        source: "UCIrvine",
        task: TaskType::Detection,
        rows: 3772,
        cols: 6,
        n_classes: 2,
    },
    DatasetSpec {
        name: "smtp",
        source: "UCIrvine",
        task: TaskType::Detection,
        rows: 95156,
        cols: 3,
        n_classes: 2,
    },
];

/// Look up a catalog entry by name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    PAPER_CATALOG.iter().find(|s| s.name == name)
}

/// One planted ground-truth interaction term contributing to the target.
#[derive(Debug, Clone, Copy)]
enum Term {
    /// `w * x_i * x_j`
    Prod(usize, usize),
    /// `w * x_i / (|x_j| + 1)`
    Ratio(usize, usize),
    /// `w * x_i^2`
    Square(usize),
    /// `w * ln(|x_i| + 1) * x_j`
    LogProd(usize, usize),
    /// `w * (x_i + x_j) * x_k`
    SumProd(usize, usize, usize),
    /// `w * x_i` (plain linear signal)
    Linear(usize),
}

impl Term {
    fn eval(&self, x: &[Vec<f64>], row: usize) -> f64 {
        match *self {
            Term::Prod(i, j) => x[i][row] * x[j][row],
            Term::Ratio(i, j) => x[i][row] / (x[j][row].abs() + 1.0),
            Term::Square(i) => x[i][row] * x[i][row],
            Term::LogProd(i, j) => (x[i][row].abs() + 1.0).ln() * x[j][row],
            Term::SumProd(i, j, k) => (x[i][row] + x[j][row]) * x[k][row],
            Term::Linear(i) => x[i][row],
        }
    }
}

/// Controls the hardness of the generated problem.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Fraction of additive Gaussian noise relative to the signal std.
    pub noise_frac: f64,
    /// Fraction of columns that are pure nuisance (uninformative).
    pub nuisance_frac: f64,
    /// Positive-class rate for detection tasks.
    pub contamination: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { noise_frac: 0.35, nuisance_frac: 0.3, contamination: 0.05 }
    }
}

/// Generate the synthetic analog of a catalog entry at full paper size.
pub fn generate(spec: &DatasetSpec, seed: u64) -> Dataset {
    generate_sized(spec, spec.rows, seed)
}

/// Generate a row-capped variant (used by the harnesses to keep the large
/// AutoML analogs laptop-sized while preserving the relative size ordering).
pub fn generate_capped(spec: &DatasetSpec, max_rows: usize, seed: u64) -> Dataset {
    generate_sized(spec, spec.rows.min(max_rows), seed)
}

fn generate_sized(spec: &DatasetSpec, rows: usize, seed: u64) -> Dataset {
    // Seed blends the dataset identity so analogs differ across datasets even
    // with the same user seed.
    let name_hash: u64 = spec
        .name
        .bytes()
        .fold(1469598103934665603u64, |h, b| (h ^ b as u64).wrapping_mul(1099511628211));
    let mut rng = rngx::rng(seed ^ name_hash);
    generate_custom(
        spec.name,
        spec.task,
        rows,
        spec.cols,
        spec.n_classes,
        GenConfig::default(),
        &mut rng,
    )
}

/// Fully parameterised generator (used directly by scalability sweeps).
pub fn generate_custom(
    name: &str,
    task: TaskType,
    rows: usize,
    cols: usize,
    n_classes: usize,
    cfg: GenConfig,
    rng: &mut StdRng,
) -> Dataset {
    assert!(rows >= 4, "need at least 4 rows");
    assert!(cols >= 2, "need at least 2 columns");

    // --- base features ----------------------------------------------------
    // A mix of standard normals, uniforms, log-normals and pairwise
    // correlated columns, mimicking the heterogeneous marginals of real
    // tabular data.
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(cols);
    for j in 0..cols {
        let col = match j % 4 {
            0 => rngx::normal_vec(rng, rows),
            1 => (0..rows).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect(),
            2 => (0..rows).map(|_| (rngx::normal(rng) * 0.5).exp() - 1.0).collect(),
            _ => {
                // Correlated with an earlier column.
                let base = rng.gen_range(0..j.max(1));
                (0..rows).map(|r| 0.7 * x[base][r] + 0.3 * rngx::normal(rng)).collect()
            }
        };
        x.push(col);
    }

    // --- planted signal ----------------------------------------------------
    let n_nuisance = ((cols as f64) * cfg.nuisance_frac) as usize;
    let informative = cols - n_nuisance.min(cols.saturating_sub(2));
    let n_inter = (informative / 3).clamp(2, 12);
    let mut terms: Vec<(f64, Term)> = Vec::new();
    for _ in 0..n_inter {
        let i = rng.gen_range(0..informative);
        let j = rng.gen_range(0..informative);
        let k = rng.gen_range(0..informative);
        let t = match rng.gen_range(0..5) {
            0 => Term::Prod(i, j),
            1 => Term::Ratio(i, j),
            2 => Term::Square(i),
            3 => Term::LogProd(i, j),
            _ => Term::SumProd(i, j, k),
        };
        let w = (rng.gen::<f64>() + 0.5) * if rng.gen::<bool>() { 1.0 } else { -1.0 };
        terms.push((w, t));
    }
    // Weak linear signal so the untransformed dataset is learnable but has
    // clear headroom for transformation.
    for i in 0..(informative / 2).max(1) {
        terms.push((0.3 * (rng.gen::<f64>() - 0.5), Term::Linear(i)));
    }

    let mut score: Vec<f64> =
        (0..rows).map(|r| terms.iter().map(|(w, t)| w * t.eval(&x, r)).sum()).collect();
    let mean = score.iter().sum::<f64>() / rows as f64;
    let std =
        (score.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / rows as f64).sqrt().max(1e-9);
    for s in &mut score {
        *s = (*s - mean) / std + cfg.noise_frac * rngx::normal(rng);
    }

    // --- targets ------------------------------------------------------------
    let targets: Vec<f64> = match task {
        TaskType::Regression => score.clone(),
        TaskType::Classification => {
            let k = n_classes.max(2);
            let mut sorted = score.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let cuts: Vec<f64> = (1..k)
                .map(|c| crate::stats::percentile_sorted(&sorted, c as f64 / k as f64))
                .collect();
            score.iter().map(|&s| cuts.iter().take_while(|&&c| s > c).count() as f64).collect()
        }
        TaskType::Detection => {
            let mut sorted = score.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let cut = crate::stats::percentile_sorted(&sorted, 1.0 - cfg.contamination);
            score.iter().map(|&s| if s > cut { 1.0 } else { 0.0 }).collect()
        }
    };

    let features: Vec<Column> =
        x.into_iter().enumerate().map(|(j, values)| Column::new(format!("f{j}"), values)).collect();
    let n_classes = if task == TaskType::Regression { 0 } else { n_classes.max(2) };
    Dataset::new(name, features, targets, task, n_classes)
        .expect("generator produced a consistent dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi;

    #[test]
    fn catalog_matches_paper_counts() {
        assert_eq!(PAPER_CATALOG.len(), 24);
        let c = PAPER_CATALOG.iter().filter(|s| s.task == TaskType::Classification).count();
        let r = PAPER_CATALOG.iter().filter(|s| s.task == TaskType::Regression).count();
        let d = PAPER_CATALOG.iter().filter(|s| s.task == TaskType::Detection).count();
        assert_eq!((c, r, d), (13, 7, 4)); // per Table I rows
    }

    #[test]
    fn generated_shapes_match_spec() {
        let spec = by_name("pima_indian").unwrap();
        let d = generate(spec, 0);
        assert_eq!(d.n_rows(), 768);
        assert_eq!(d.n_features(), 8);
        assert_eq!(d.task, TaskType::Classification);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = by_name("svmguide3").unwrap();
        let a = generate(spec, 5);
        let b = generate(spec, 5);
        assert_eq!(a, b);
        let c = generate(spec, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn different_datasets_differ_with_same_seed() {
        let a = generate(by_name("openml_589").unwrap(), 1);
        let b = generate(by_name("openml_620").unwrap(), 1);
        assert_ne!(a.features[0].values, b.features[0].values);
    }

    #[test]
    fn classification_targets_are_valid_classes() {
        let spec = by_name("wine_quality_red").unwrap();
        let d = generate(spec, 2);
        for &y in &d.targets {
            assert!(y >= 0.0 && (y as usize) < d.n_classes && y.fract() == 0.0);
        }
        // All classes populated.
        for c in 0..d.n_classes {
            assert!(d.targets.iter().any(|&y| y as usize == c), "class {c} empty");
        }
    }

    #[test]
    fn detection_rate_near_contamination() {
        let spec = by_name("mammography").unwrap();
        let d = generate(spec, 3);
        let pos = d.targets.iter().filter(|&&y| y == 1.0).count() as f64 / d.n_rows() as f64;
        assert!(pos > 0.01 && pos < 0.12, "positive rate {pos}");
    }

    #[test]
    fn capped_generation_limits_rows() {
        let spec = by_name("albert").unwrap();
        let d = generate_capped(spec, 2000, 0);
        assert_eq!(d.n_rows(), 2000);
        assert_eq!(d.n_features(), 79);
    }

    #[test]
    fn values_are_finite() {
        let spec = by_name("openml_616").unwrap();
        let d = generate(spec, 4);
        assert!(d.features.iter().all(crate::Column::is_finite));
        assert!(d.targets.iter().all(|y| y.is_finite()));
    }

    #[test]
    fn planted_interactions_beat_raw_features() {
        // A hand-built crossing of base features should carry more MI with
        // the target than the best single raw feature on a meaningful share
        // of seeds — i.e. there is headroom for feature transformation.
        let spec = by_name("pima_indian").unwrap();
        let mut wins = 0;
        for seed in 0..20 {
            let d = generate(spec, seed);
            let raw = mi::relevance_scores(&d, mi::DEFAULT_BINS);
            let best_raw = raw.iter().cloned().fold(f64::MIN, f64::max);
            let mut best_cross = f64::MIN;
            for i in 0..d.n_features() {
                for j in 0..d.n_features() {
                    let prod: Vec<f64> = d.features[i]
                        .values
                        .iter()
                        .zip(&d.features[j].values)
                        .map(|(a, b)| a * b)
                        .collect();
                    let m = mi::mi_feature_target(&prod, &d.targets, true, mi::DEFAULT_BINS);
                    best_cross = best_cross.max(m);
                }
            }
            if best_cross > best_raw {
                wins += 1;
            }
        }
        assert!(wins >= 2, "crossings beat raw features on only {wins}/20 seeds");
    }
}
