//! Column-major tabular dataset with a task-typed target.

use crate::error::{FastFtError, FastFtResult};
use std::fmt;

/// The downstream task family a dataset is labelled for.
///
/// Mirrors the paper's split of the 23 benchmark datasets into 12
/// classification (C), 7 regression (R) and 4 detection (D) tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskType {
    /// Multi-class classification; targets are class indices stored as `f64`.
    Classification,
    /// Real-valued regression targets.
    Regression,
    /// Anomaly / outlier detection: binary targets with a rare positive
    /// class, evaluated by AUC in the paper.
    Detection,
}

impl TaskType {
    /// Single-letter code used in the paper's Table I ("C" / "R" / "D").
    pub fn code(self) -> char {
        match self {
            TaskType::Classification => 'C',
            TaskType::Regression => 'R',
            TaskType::Detection => 'D',
        }
    }

    /// Whether targets are discrete class indices.
    pub fn is_discrete(self) -> bool {
        !matches!(self, TaskType::Regression)
    }
}

impl fmt::Display for TaskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskType::Classification => write!(f, "classification"),
            TaskType::Regression => write!(f, "regression"),
            TaskType::Detection => write!(f, "detection"),
        }
    }
}

/// A single named feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Human-readable feature name. For generated features this is the
    /// traceable expression string (e.g. `(f3*f9+1)*f4`).
    pub name: String,
    /// One value per sample (row).
    pub values: Vec<f64>,
}

impl Column {
    /// Create a column from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column { name: name.into(), values }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when every value is finite (no NaN / ±inf).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

/// A column-major dataset `D = <F, y>` (Definition 2 in the paper).
///
/// Features are stored as whole columns because every consumer in this
/// workspace — mutual information, clustering, per-feature statistics, tree
/// split search, feature transformation itself — operates column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (for reporting).
    pub name: String,
    /// Feature columns; all must share the same length.
    pub features: Vec<Column>,
    /// Target vector; class indices stored as `f64` for discrete tasks.
    pub targets: Vec<f64>,
    /// Task family.
    pub task: TaskType,
    /// Number of classes for discrete tasks (`0` for regression).
    pub n_classes: usize,
}

impl Dataset {
    /// Build a dataset, validating that all columns and the target share one
    /// length and that discrete targets are in-range class indices.
    pub fn new(
        name: impl Into<String>,
        features: Vec<Column>,
        targets: Vec<f64>,
        task: TaskType,
        n_classes: usize,
    ) -> FastFtResult<Self> {
        let n = targets.len();
        for c in &features {
            if c.values.len() != n {
                return Err(FastFtError::InvalidData(format!(
                    "column `{}` has {} rows but target has {}",
                    c.name,
                    c.values.len(),
                    n
                )));
            }
        }
        if task.is_discrete() {
            if n_classes < 2 {
                return Err(FastFtError::InvalidData(format!(
                    "discrete task needs >=2 classes, got {n_classes}"
                )));
            }
            for (i, &y) in targets.iter().enumerate() {
                if y.fract() != 0.0 || y < 0.0 || y as usize >= n_classes {
                    return Err(FastFtError::InvalidData(format!(
                        "row {i}: target {y} is not a class index < {n_classes}"
                    )));
                }
            }
        }
        Ok(Dataset { name: name.into(), features, targets, task, n_classes })
    }

    /// Number of samples (rows).
    pub fn n_rows(&self) -> usize {
        self.targets.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// `rows × cols`, the dataset "size" used in the paper's Table II.
    pub fn size(&self) -> usize {
        self.n_rows() * self.n_features()
    }

    /// Integer class labels for discrete tasks.
    ///
    /// # Panics
    /// Panics if the task is regression.
    pub fn class_labels(&self) -> Vec<usize> {
        assert!(self.task.is_discrete(), "class_labels on a regression dataset");
        self.targets.iter().map(|&y| y as usize).collect()
    }

    /// Materialise one row as a dense vector (feature order).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.features.iter().map(|c| c.values[i]).collect()
    }

    /// Materialise all rows (row-major) — used by row-oriented models.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows()).map(|i| self.row(i)).collect()
    }

    /// A new dataset containing only the given row indices (feature columns
    /// and targets are gathered; name and task metadata are kept).
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        let features = self
            .features
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                values: idx.iter().map(|&i| c.values[i]).collect(),
            })
            .collect();
        let targets = idx.iter().map(|&i| self.targets[i]).collect();
        Dataset {
            name: self.name.clone(),
            features,
            targets,
            task: self.task,
            n_classes: self.n_classes,
        }
    }

    /// A new dataset containing only the given feature columns (by index).
    pub fn select_features(&self, idx: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: idx.iter().map(|&j| self.features[j].clone()).collect(),
            targets: self.targets.clone(),
            task: self.task,
            n_classes: self.n_classes,
        }
    }

    /// Replace the feature set, keeping targets/metadata. Columns must match
    /// the row count.
    pub fn with_features(&self, features: Vec<Column>) -> FastFtResult<Dataset> {
        Dataset::new(self.name.clone(), features, self.targets.clone(), self.task, self.n_classes)
    }

    /// Append a feature column in place.
    ///
    /// # Panics
    /// Panics if the column length differs from the row count.
    pub fn push_feature(&mut self, col: Column) {
        assert_eq!(col.values.len(), self.n_rows(), "column length mismatch");
        self.features.push(col);
    }

    /// Find a feature index by (exact) name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|c| c.name == name)
    }

    /// Clip all feature values into a finite range and replace non-finite
    /// values with 0. Feature transformation (log, divide, exp) can produce
    /// NaN/inf; downstream models require finite input.
    pub fn sanitize(&mut self) {
        const LIM: f64 = 1e12;
        for c in &mut self.features {
            for v in &mut c.values {
                if !v.is_finite() {
                    *v = 0.0;
                } else {
                    *v = v.clamp(-LIM, LIM);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![0.5, 0.5, 1.5, 1.5]),
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn construct_and_shape() {
        let d = toy();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.size(), 8);
        assert_eq!(d.row(2), vec![3.0, 1.5]);
    }

    #[test]
    fn rejects_ragged_columns() {
        let err = Dataset::new(
            "bad",
            vec![Column::new("a", vec![1.0, 2.0])],
            vec![0.0, 1.0, 0.0],
            TaskType::Classification,
            2,
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_out_of_range_class() {
        let err = Dataset::new(
            "bad",
            vec![Column::new("a", vec![1.0, 2.0])],
            vec![0.0, 5.0],
            TaskType::Classification,
            2,
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_fractional_class() {
        let err = Dataset::new(
            "bad",
            vec![Column::new("a", vec![1.0, 2.0])],
            vec![0.0, 0.5],
            TaskType::Detection,
            2,
        );
        assert!(err.is_err());
    }

    #[test]
    fn regression_allows_any_targets() {
        let d = Dataset::new(
            "r",
            vec![Column::new("a", vec![1.0, 2.0])],
            vec![-3.25, 7.5],
            TaskType::Regression,
            0,
        );
        assert!(d.is_ok());
    }

    #[test]
    fn select_rows_gathers() {
        let d = toy();
        let s = d.select_rows(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.features[0].values, vec![4.0, 1.0]);
        assert_eq!(s.targets, vec![1.0, 0.0]);
    }

    #[test]
    fn select_features_keeps_targets() {
        let d = toy();
        let s = d.select_features(&[1]);
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.features[0].name, "b");
        assert_eq!(s.targets, d.targets);
    }

    #[test]
    fn sanitize_replaces_nonfinite() {
        let mut d = toy();
        d.features[0].values[1] = f64::NAN;
        d.features[1].values[0] = f64::INFINITY;
        d.sanitize();
        assert_eq!(d.features[0].values[1], 0.0);
        assert!(d.features[1].values[0].is_finite());
        assert!(d.features.iter().all(Column::is_finite));
    }

    #[test]
    fn task_codes_match_paper() {
        assert_eq!(TaskType::Classification.code(), 'C');
        assert_eq!(TaskType::Regression.code(), 'R');
        assert_eq!(TaskType::Detection.code(), 'D');
    }

    #[test]
    fn feature_index_lookup() {
        let d = toy();
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("zzz"), None);
    }
}
