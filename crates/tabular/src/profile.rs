//! Dataset profiling: per-column summaries, pairwise correlations and
//! target balance — the "look before you transform" report a data-centric
//! library owes its users.

use crate::dataset::Dataset;
use crate::stats::describe;
use std::fmt::Write as _;

/// Summary of one feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of distinct values.
    pub distinct: usize,
    /// Fraction of non-finite cells.
    pub missing_frac: f64,
}

/// Profile every column of a dataset.
pub fn profile_columns(data: &Dataset) -> Vec<ColumnProfile> {
    data.features
        .iter()
        .map(|c| {
            let finite: Vec<f64> = c.values.iter().copied().filter(|v| v.is_finite()).collect();
            let d = describe(&finite);
            let mut sorted = finite.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted.dedup();
            ColumnProfile {
                name: c.name.clone(),
                mean: d[0],
                std: d[1],
                min: d[2],
                max: d[6],
                distinct: sorted.len(),
                missing_frac: if c.values.is_empty() {
                    0.0
                } else {
                    (c.values.len() - finite.len()) as f64 / c.values.len() as f64
                },
            }
        })
        .collect()
}

/// Pearson correlation between two equal-length vectors (0 for degenerate
/// inputs).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// The `k` most correlated feature pairs `(i, j, |r|)`, strongest first.
pub fn top_correlated_pairs(data: &Dataset, k: usize) -> Vec<(usize, usize, f64)> {
    let d = data.n_features();
    let mut pairs = Vec::new();
    for i in 0..d {
        for j in (i + 1)..d {
            let r = pearson(&data.features[i].values, &data.features[j].values);
            pairs.push((i, j, r.abs()));
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    pairs.truncate(k);
    pairs
}

/// Per-class counts for discrete tasks (empty for regression).
pub fn class_balance(data: &Dataset) -> Vec<usize> {
    if !data.task.is_discrete() {
        return Vec::new();
    }
    let mut counts = vec![0usize; data.n_classes];
    for &y in &data.targets {
        counts[y as usize] += 1;
    }
    counts
}

/// Render a full text profile.
pub fn render(data: &Dataset) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{}: {} rows x {} cols, {} task",
        data.name,
        data.n_rows(),
        data.n_features(),
        data.task
    );
    let balance = class_balance(data);
    if !balance.is_empty() {
        let _ = writeln!(s, "class balance: {balance:?}");
    }
    let _ = writeln!(
        s,
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "column", "mean", "std", "min", "max", "distinct", "missing"
    );
    for p in profile_columns(data) {
        let _ = writeln!(
            s,
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8} {:>7.1}%",
            p.name,
            p.mean,
            p.std,
            p.min,
            p.max,
            p.distinct,
            100.0 * p.missing_frac
        );
    }
    for (i, j, r) in top_correlated_pairs(data, 3) {
        let _ =
            writeln!(s, "corr |r|={r:.3}: {} ~ {}", data.features[i].name, data.features[j].name);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Column, TaskType};

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![2.0, 4.0, 6.0, 8.0]),
                Column::new("c", vec![5.0, 5.0, 5.0, f64::NAN]),
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn column_profiles() {
        let p = profile_columns(&toy());
        assert_eq!(p[0].mean, 2.5);
        assert_eq!(p[0].min, 1.0);
        assert_eq!(p[0].max, 4.0);
        assert_eq!(p[0].distinct, 4);
        assert_eq!(p[2].distinct, 1);
        assert!((p[2].missing_frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // constant input
    }

    #[test]
    fn top_pairs_finds_linear_relation() {
        let pairs = top_correlated_pairs(&toy(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
        assert!(pairs[0].2 > 0.999);
    }

    #[test]
    fn class_balance_counts() {
        assert_eq!(class_balance(&toy()), vec![2, 2]);
        let mut reg = toy();
        reg.task = TaskType::Regression;
        assert!(class_balance(&reg).is_empty());
    }

    #[test]
    fn render_contains_key_facts() {
        let s = render(&toy());
        assert!(s.contains("4 rows x 3 cols"));
        assert!(s.contains("class balance"));
        assert!(s.contains("corr |r|="));
    }
}
