//! Seeded RNG helpers shared across the workspace.
//!
//! `rand 0.8` without `rand_distr` has no Gaussian sampler, so we provide a
//! Box–Muller implementation here (DESIGN.md §5 keeps the dependency list to
//! the approved offline crates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the workspace-standard deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample a standard normal via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `n` iid standard normals.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| normal(rng)).collect()
}

/// Fisher–Yates shuffle of an index range `0..n`.
pub fn shuffled_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` (k <= n), order unspecified.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n}");
    // Partial Fisher–Yates: only the first k swaps are needed.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut r = rng(7);
        let xs = normal_vec(&mut r, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal_vec(&mut rng(42), 10);
        let b = normal_vec(&mut rng(42), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng(3);
        let mut s = shuffled_indices(&mut r, 100);
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut r = rng(5);
        let mut s = sample_without_replacement(&mut r, 50, 20);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic]
    fn oversample_panics() {
        let mut r = rng(1);
        let _ = sample_without_replacement(&mut r, 3, 4);
    }
}
