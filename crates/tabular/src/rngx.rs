//! The workspace's own seeded PRNG — no external dependencies.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through a
//! SplitMix64 expansion of a single `u64`, with a Box–Muller normal
//! sampler, Fisher–Yates shuffling and uniform range/choice helpers on
//! top. Everything in the workspace that needs randomness goes through
//! [`StdRng`], which keeps runs byte-reproducible for a given seed.
//!
//! # Streams
//!
//! Parallel code must not share one sequential generator across work items
//! (the interleaving would depend on thread scheduling). Instead each item
//! derives its own independent stream with [`StdRng::stream`]: the result
//! depends only on `(seed, stream)`, never on which worker thread runs the
//! item, so results are identical at any thread count.

/// SplitMix64 step — used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator (the workspace-standard RNG).
///
/// The name `StdRng` is kept from the earlier `rand`-backed implementation
/// so call sites read the same; the algorithm is now fully in-repo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Construct from a `u64` seed via SplitMix64 state expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }

    /// An independent generator for work item `stream` of a run seeded with
    /// `seed`. Streams are decorrelated by mixing the stream index through
    /// SplitMix64 before seeding, so `stream(s, 0)`, `stream(s, 1)`, … are
    /// unrelated sequences that depend only on `(seed, stream)` — the
    /// foundation of thread-count-independent parallel determinism.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = stream.wrapping_add(0xA076_1D64_78BD_642F);
        let salt = splitmix64(&mut sm);
        StdRng::seed_from_u64(seed ^ salt)
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Sample a value of type `T` (uniform over `T`'s natural domain;
    /// `f64`/`f32` are uniform in `[0, 1)`).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniformly pick a reference into a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.gen_range(0..slice.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// The raw xoshiro256++ state, for checkpointing. Restoring it with
    /// [`StdRng::from_state`] resumes the stream exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`StdRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample(rng: &mut StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait UniformRange {
    /// Element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

/// Map a raw draw onto `0..span` without modulo bias (widening multiply).
#[inline]
fn bounded(rng: &mut StdRng, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + rng.gen::<$t>() * (self.end - self.start)
            }
        }
    )*};
}

impl_uniform_float!(f64, f32);

/// Construct the workspace-standard deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample a standard normal via the Box–Muller transform.
pub fn normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1]: avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `n` iid standard normals.
pub fn normal_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| normal(rng)).collect()
}

/// Fisher–Yates shuffle of an index range `0..n`.
pub fn shuffled_indices(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx
}

/// Sample `k` distinct indices from `0..n` (k <= n), order unspecified.
pub fn sample_without_replacement(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n}");
    // Partial Fisher–Yates: only the first k swaps are needed.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut r = rng(7);
        let xs = normal_vec(&mut r, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal_vec(&mut rng(42), 10);
        let b = normal_vec(&mut rng(42), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng(3);
        let mut s = shuffled_indices(&mut r, 100);
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut r = rng(5);
        let mut s = sample_without_replacement(&mut r, 50, 20);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic]
    fn oversample_panics() {
        let mut r = rng(1);
        let _ = sample_without_replacement(&mut r, 3, 4);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-SplitMix64(0) seed,
        // cross-checked against the reference C implementation's seeding
        // recipe: uniqueness and stability are what we pin here.
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(0);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut uniq = va.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), va.len(), "early outputs collide: {va:?}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = rng(11);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
        let mean: f64 = {
            let mut s = 0.0;
            for _ in 0..50_000 {
                s += r.gen::<f64>();
            }
            s / 50_000.0
        };
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = rng(13);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = rng(1);
        let _ = r.gen_range(3..3usize);
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let a: Vec<u64> = {
            let mut s = StdRng::stream(42, 0);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = StdRng::stream(42, 1);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut s = StdRng::stream(42, 0);
            (0..4).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, a2, "stream not reproducible");
        assert_ne!(a, b, "distinct streams collide");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = rng(17);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_picks_members() {
        let mut r = rng(19);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
