//! Evaluation metrics used by the paper (§V "Evaluation Metrics").
//!
//! Classification: F1-score (macro), precision, recall.
//! Regression: 1-RAE, 1-MAE, 1-MSE (higher is better, matching Table I).
//! Detection: AUC (plus precision/F1 reusing the classification paths).

/// Which scalar score an evaluation reports. All metrics are oriented so that
/// **higher is better**, as in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Macro-averaged F1 (classification default in Table I).
    F1,
    /// Macro-averaged precision.
    Precision,
    /// Macro-averaged recall.
    Recall,
    /// Plain accuracy.
    Accuracy,
    /// `1 - relative absolute error` (regression default in Table I).
    OneMinusRae,
    /// `1 - mean absolute error`.
    OneMinusMae,
    /// `1 - mean squared error`.
    OneMinusMse,
    /// Area under the ROC curve (detection default in Table I).
    Auc,
}

impl Metric {
    /// The paper's default reporting metric per task type.
    pub fn default_for(task: crate::TaskType) -> Metric {
        match task {
            crate::TaskType::Classification => Metric::F1,
            crate::TaskType::Regression => Metric::OneMinusRae,
            crate::TaskType::Detection => Metric::Auc,
        }
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Metric::F1 => "F1",
            Metric::Precision => "Precision",
            Metric::Recall => "Recall",
            Metric::Accuracy => "Accuracy",
            Metric::OneMinusRae => "1-RAE",
            Metric::OneMinusMae => "1-MAE",
            Metric::OneMinusMse => "1-MSE",
            Metric::Auc => "AUC",
        }
    }

    /// Stable checkpoint tag. 255 is reserved for "no metric" by callers
    /// that persist an optional metric in a single byte.
    pub fn persist_tag(self) -> u8 {
        match self {
            Metric::F1 => 0,
            Metric::Precision => 1,
            Metric::Recall => 2,
            Metric::Accuracy => 3,
            Metric::OneMinusRae => 4,
            Metric::OneMinusMae => 5,
            Metric::OneMinusMse => 6,
            Metric::Auc => 7,
        }
    }

    /// Inverse of [`Metric::persist_tag`].
    pub fn from_persist_tag(tag: u8) -> Result<Self, String> {
        Ok(match tag {
            0 => Metric::F1,
            1 => Metric::Precision,
            2 => Metric::Recall,
            3 => Metric::Accuracy,
            4 => Metric::OneMinusRae,
            5 => Metric::OneMinusMae,
            6 => Metric::OneMinusMse,
            7 => Metric::Auc,
            t => return Err(format!("unknown metric tag {t}")),
        })
    }
}

impl crate::persist::Persist for Metric {
    fn persist(&self, w: &mut crate::persist::Writer) {
        w.u8(self.persist_tag());
    }

    fn restore(r: &mut crate::persist::Reader) -> crate::persist::PersistResult<Self> {
        Metric::from_persist_tag(r.u8()?)
    }
}

/// Per-class counts backing the macro-averaged classification metrics.
fn confusion_counts(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<(f64, f64, f64)> {
    // (tp, fp, fn) per class
    let mut counts = vec![(0.0, 0.0, 0.0); n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t == p {
            counts[t].0 += 1.0;
        } else {
            counts[p].1 += 1.0;
            counts[t].2 += 1.0;
        }
    }
    counts
}

/// Macro-averaged precision over classes that appear in `y_true` or `y_pred`.
pub fn precision_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    macro_avg(y_true, y_pred, n_classes, |tp, fp, _fn| safe_div(tp, tp + fp))
}

/// Macro-averaged recall.
pub fn recall_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    macro_avg(y_true, y_pred, n_classes, |tp, _fp, fn_| safe_div(tp, tp + fn_))
}

/// Macro-averaged F1.
pub fn f1_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    macro_avg(y_true, y_pred, n_classes, |tp, fp, fn_| {
        let p = safe_div(tp, tp + fp);
        let r = safe_div(tp, tp + fn_);
        safe_div(2.0 * p * r, p + r)
    })
}

fn macro_avg(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
    per_class: impl Fn(f64, f64, f64) -> f64,
) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let counts = confusion_counts(y_true, y_pred, n_classes);
    // Average over classes present in the ground truth, matching sklearn's
    // behaviour of skipping absent classes only when they never occur.
    let mut present = vec![false; n_classes];
    for &t in y_true {
        present[t] = true;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (c, &(tp, fp, fn_)) in counts.iter().enumerate() {
        if present[c] {
            sum += per_class(tp, fp, fn_);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

/// Plain accuracy.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// `1 - RAE` where `RAE = Σ|y-ŷ| / Σ|y-ȳ|` (paper's regression metric).
pub fn one_minus_rae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let num: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum();
    let den: f64 = y_true.iter().map(|t| (t - mean).abs()).sum();
    if den == 0.0 {
        if num == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - num / den
    }
}

/// `1 - MAE`.
pub fn one_minus_mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mae =
        y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / y_true.len() as f64;
    1.0 - mae
}

/// `1 - MSE`.
pub fn one_minus_mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mse = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>()
        / y_true.len() as f64;
    1.0 - mse
}

/// Area under the ROC curve for binary targets given positive-class scores.
///
/// Computed via the Mann–Whitney U statistic with midrank tie handling, which
/// is exact and O(n log n).
pub fn auc(y_true: &[usize], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len());
    let n_pos = y_true.iter().filter(|&&y| y == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5; // undefined; conventional fallback
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // Midranks over tied score groups.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0; // ranks are 1-based
        for &k in &order[i..=j] {
            if y_true[k] == 1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Welch's t-statistic and a two-sided p-value approximation for paired
/// method comparisons — the paper reports a t-stat / p-value row in Table I.
///
/// Returns `(t, p)`. Uses a normal approximation of the t distribution, which
/// is accurate for the df ≥ 20 regime of the 23-dataset comparison.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len() as f64;
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1.0);
    if var == 0.0 {
        return if mean == 0.0 { (0.0, 1.0) } else { (f64::INFINITY, 0.0) };
    }
    let t = mean / (var / n).sqrt();
    // Two-sided p via the standard normal tail (erfc-based).
    let p = erfc(t.abs() / std::f64::consts::SQRT_2);
    (t, p)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation, |error| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign < 0.0 {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_f1_is_one() {
        let y = vec![0, 1, 2, 1, 0];
        assert!((f1_macro(&y, &y, 3) - 1.0).abs() < 1e-12);
        assert!((precision_macro(&y, &y, 3) - 1.0).abs() < 1e-12);
        assert!((recall_macro(&y, &y, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_matches_hand_computation() {
        // class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
        // class 1: tp=1 fp=1 fn=1 -> f1=0.5
        let t = vec![0, 0, 1, 1];
        let p = vec![0, 1, 1, 0];
        assert!((f1_macro(&t, &p, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_skips_absent_classes() {
        // Class 2 never occurs in truth; macro average over {0,1} only.
        let t = vec![0, 1];
        let p = vec![0, 1];
        assert!((f1_macro(&t, &p, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rae_zero_predictor_of_mean() {
        // Predicting the mean everywhere gives RAE = 1 -> score 0.
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let pred = vec![2.5; 4];
        assert!(one_minus_rae(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn rae_perfect_is_one() {
        let y = vec![1.0, 2.0, 3.0];
        assert!((one_minus_rae(&y, &y) - 1.0).abs() < 1e-12);
        assert!((one_minus_mae(&y, &y) - 1.0).abs() < 1e-12);
        assert!((one_minus_mse(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = vec![0, 0, 1, 1];
        assert!((auc(&y, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!(auc(&y, &[0.9, 0.8, 0.2, 0.1]).abs() < 1e-12);
    }

    #[test]
    fn auc_ties_give_half() {
        let y = vec![0, 1, 0, 1];
        assert!((auc(&y, &[0.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs won: (0.8>0.6),(0.8>0.2),(0.4<0.6 -> 0),(0.4>0.2) = 3/4
        let y = vec![1, 0, 1, 0];
        let s = vec![0.8, 0.6, 0.4, 0.2];
        assert!((auc(&y, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(auc(&[1, 1], &[0.3, 0.7]), 0.5);
    }

    #[test]
    fn t_test_direction() {
        let a = vec![0.9, 0.8, 0.85, 0.95, 0.9];
        let b = vec![0.5, 0.55, 0.5, 0.6, 0.52];
        let (t, p) = paired_t_test(&a, &b);
        assert!(t > 3.0, "t = {t}");
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn t_test_identical_samples() {
        let a = vec![0.5, 0.6, 0.7];
        let (t, p) = paired_t_test(&a, &a);
        assert_eq!(t, 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn metric_defaults_match_paper() {
        use crate::TaskType::*;
        assert_eq!(Metric::default_for(Classification), Metric::F1);
        assert_eq!(Metric::default_for(Regression), Metric::OneMinusRae);
        assert_eq!(Metric::default_for(Detection), Metric::Auc);
    }
}
