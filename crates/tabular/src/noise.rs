//! Noise injection — supporting the paper's future-work direction of
//! "noise-robust training strategies" (§IX): controlled corruption of
//! features and labels so robustness can be measured (the `ext_noise`
//! harness in `fastft-bench`).

use crate::dataset::Dataset;
use crate::rngx;

/// Add iid Gaussian noise to every feature, scaled per column:
/// `x ← x + level · std(x) · ε`.
pub fn add_feature_noise(data: &mut Dataset, level: f64, seed: u64) {
    assert!(level >= 0.0);
    let mut rng = rngx::rng(seed);
    for col in &mut data.features {
        let n = col.values.len().max(1) as f64;
        let mean = col.values.iter().sum::<f64>() / n;
        let std = (col.values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt();
        let scale = level * std;
        for v in &mut col.values {
            *v += scale * rngx::normal(&mut rng);
        }
    }
}

/// Flip a fraction of discrete labels to a uniformly-random *different*
/// class. Returns the number of labels flipped.
///
/// # Panics
/// Panics on regression datasets or `frac` outside `[0, 1]`.
pub fn flip_labels(data: &mut Dataset, frac: f64, seed: u64) -> usize {
    assert!(data.task.is_discrete(), "label flipping needs discrete targets");
    assert!((0.0..=1.0).contains(&frac));
    let mut rng = rngx::rng(seed);
    let n = data.n_rows();
    let k = ((n as f64) * frac).round() as usize;
    let picks = rngx::sample_without_replacement(&mut rng, n, k.min(n));
    for &i in &picks {
        let current = data.targets[i] as usize;
        let mut other = rng.gen_range(0..data.n_classes.max(2) - 1);
        if other >= current {
            other += 1;
        }
        data.targets[i] = other as f64;
    }
    picks.len()
}

/// Perturb a fraction of regression targets with Gaussian noise scaled by
/// the target standard deviation.
pub fn perturb_targets(data: &mut Dataset, frac: f64, level: f64, seed: u64) -> usize {
    assert!(!data.task.is_discrete(), "use flip_labels for discrete targets");
    assert!((0.0..=1.0).contains(&frac));
    let mut rng = rngx::rng(seed);
    let n = data.n_rows().max(1);
    let mean = data.targets.iter().sum::<f64>() / n as f64;
    let std = (data.targets.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt();
    let k = ((n as f64) * frac).round() as usize;
    let picks = rngx::sample_without_replacement(&mut rng, n, k.min(n));
    for &i in &picks {
        data.targets[i] += level * std * rngx::normal(&mut rng);
    }
    picks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;

    fn load(name: &str) -> Dataset {
        let spec = datagen::by_name(name).unwrap();
        datagen::generate_capped(spec, 200, 0)
    }

    #[test]
    fn feature_noise_changes_values_proportionally() {
        let mut d = load("pima_indian");
        let before = d.features[0].values.clone();
        add_feature_noise(&mut d, 0.1, 1);
        let diffs: Vec<f64> =
            before.iter().zip(&d.features[0].values).map(|(a, b)| (a - b).abs()).collect();
        assert!(diffs.iter().any(|&x| x > 0.0));
        // Noise at level 0 is a no-op.
        let mut d2 = load("pima_indian");
        let before2 = d2.features[0].values.clone();
        add_feature_noise(&mut d2, 0.0, 1);
        assert_eq!(before2, d2.features[0].values);
    }

    #[test]
    fn flip_labels_changes_exact_count_and_stays_valid() {
        let mut d = load("pima_indian");
        let before = d.targets.clone();
        let flipped = flip_labels(&mut d, 0.2, 2);
        assert_eq!(flipped, 40);
        let changed = before.iter().zip(&d.targets).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 40);
        for &y in &d.targets {
            assert!(y.fract() == 0.0 && (y as usize) < d.n_classes);
        }
    }

    #[test]
    fn flip_never_keeps_original_class() {
        let mut d = load("wine_quality_red"); // 4 classes
        let before = d.targets.clone();
        flip_labels(&mut d, 1.0, 3);
        for (a, b) in before.iter().zip(&d.targets) {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn perturb_targets_regression_only() {
        let mut d = load("openml_620");
        let before = d.targets.clone();
        let k = perturb_targets(&mut d, 0.5, 1.0, 4);
        assert_eq!(k, 100);
        let changed = before.iter().zip(&d.targets).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 100);
    }

    #[test]
    #[should_panic]
    fn flip_rejects_regression() {
        let mut d = load("openml_620");
        flip_labels(&mut d, 0.1, 0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = load("pima_indian");
        let mut b = load("pima_indian");
        add_feature_noise(&mut a, 0.3, 9);
        add_feature_noise(&mut b, 0.3, 9);
        assert_eq!(a, b);
    }
}
