//! The workspace-wide typed error.
//!
//! Every fallible public entry point — dataset construction, CSV I/O,
//! downstream evaluation, expression parsing, configuration building and
//! `FastFt::fit` itself — returns [`FastFtError`] instead of panicking, so
//! library consumers and the CLI can report failures without aborting.
//! The type lives in `fastft-tabular` (the lowest crate in the dependency
//! graph) and is re-exported as `fastft_core::FastFtError`.

use std::fmt;

/// Result alias used across the workspace's public APIs.
pub type FastFtResult<T> = Result<T, FastFtError>;

/// Typed error for every fallible FASTFT operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FastFtError {
    /// A dataset (or column set) violated a shape/typing invariant:
    /// ragged columns, out-of-range class labels, empty feature sets.
    InvalidData(String),
    /// A run configuration was rejected by validation (out-of-range α/β/ε,
    /// zero-sized buffers, …).
    InvalidConfig(String),
    /// Malformed textual input: CSV cells, expression strings, saved
    /// feature-set files.
    Parse(String),
    /// Filesystem failure, with the path it concerned.
    Io {
        /// Path of the file being read or written.
        path: String,
        /// Stringified OS error.
        message: String,
    },
    /// A downstream evaluation could not be carried out (e.g. a regression
    /// metric requested for a classification task).
    Evaluation(String),
}

impl FastFtError {
    /// Convenience constructor for [`FastFtError::Io`].
    pub fn io(path: impl AsRef<std::path::Path>, err: &std::io::Error) -> Self {
        FastFtError::Io { path: path.as_ref().display().to_string(), message: err.to_string() }
    }
}

impl fmt::Display for FastFtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastFtError::InvalidData(m) => write!(f, "invalid data: {m}"),
            FastFtError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            FastFtError::Parse(m) => write!(f, "parse error: {m}"),
            FastFtError::Io { path, message } => write!(f, "io error on `{path}`: {message}"),
            FastFtError::Evaluation(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for FastFtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = FastFtError::InvalidData("ragged".into());
        assert_eq!(e.to_string(), "invalid data: ragged");
        let e = FastFtError::Io { path: "x.csv".into(), message: "denied".into() };
        assert!(e.to_string().contains("x.csv"));
        assert!(e.to_string().contains("denied"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&FastFtError::Parse("bad".into()));
    }
}
