//! Unified persistence layer: little-endian binary [`Writer`]/[`Reader`]
//! primitives and the [`Persist`] trait implemented once per component.
//!
//! Every piece of engine state that must survive a checkpoint implements
//! [`Persist`] next to its own definition — network weights in `fastft-nn`,
//! replay buffers in `fastft-rl`, evaluator settings in `fastft-ml`, the
//! run state itself in `fastft-core`. The checkpoint file is then just the
//! concatenation of component encodings: `Snapshot` construction
//! destructures the run state exhaustively, so adding a state field without
//! persisting it is a compile error rather than a silent resume bug.
//!
//! Encoding rules (stable across the workspace, little-endian):
//! - integers as fixed-width LE bytes; `usize` always as `u64`
//! - `f64` as IEEE-754 bits (floats round-trip exactly)
//! - `bool` as one byte (0/1)
//! - `String` as `u64` length + UTF-8 bytes
//! - `Vec<T>` as `u64` length + elements
//! - `Option<T>` as a presence byte + value
//! - `[u64; N]` raw, no length prefix (fixed-size by type)
//!
//! Readers bounds-check every length against the remaining input, so a
//! corrupt or truncated file produces a typed error, never a panic or an
//! unbounded allocation.

/// Restore error: a human-readable description of where decoding failed.
pub type PersistError = String;

/// Result alias used by [`Persist::restore`] and [`Reader`] primitives.
pub type PersistResult<T> = Result<T, PersistError>;

/// A component that can write itself to a byte stream and restore itself
/// from one, bitwise-exactly.
pub trait Persist: Sized {
    /// Append this value's encoding to the writer.
    fn persist(&self, w: &mut Writer);
    /// Decode a value previously written by [`Persist::persist`].
    fn restore(r: &mut Reader) -> PersistResult<Self>;
}

/// Growable little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` as 4 LE bytes.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` as 8 LE bytes.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a string as length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume the next `n` bytes.
    pub fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {} (wanted {} more)", self.pos, n))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` from 4 LE bytes.
    pub fn u32(&mut self) -> PersistResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` from 8 LE bytes.
    pub fn u64(&mut self) -> PersistResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`), rejecting values beyond the
    /// platform's range.
    pub fn usize(&mut self) -> PersistResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} exceeds platform usize"))
    }

    /// A length that bounds an upcoming allocation. Each element occupies
    /// at least one byte in the stream, so any honest length is bounded by
    /// the remaining input — rejecting larger values stops a corrupt
    /// header from triggering a huge allocation.
    pub fn seq_len(&mut self) -> PersistResult<usize> {
        let v = self.usize()?;
        if v > self.remaining() {
            return Err(format!("length {v} exceeds remaining input"));
        }
        Ok(v)
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` from one byte.
    pub fn bool(&mut self) -> PersistResult<bool> {
        Ok(self.u8()? != 0)
    }

    /// Read a string written by [`Writer::str`].
    pub fn str(&mut self) -> PersistResult<String> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --- scalar impls ----------------------------------------------------------

impl Persist for u8 {
    fn persist(&self, w: &mut Writer) {
        w.u8(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.u8()
    }
}

impl Persist for u32 {
    fn persist(&self, w: &mut Writer) {
        w.u32(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut Writer) {
        w.u64(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut Writer) {
        w.usize(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.usize()
    }
}

impl Persist for f64 {
    fn persist(&self, w: &mut Writer) {
        w.f64(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.f64()
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut Writer) {
        w.bool(*self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.bool()
    }
}

impl Persist for String {
    fn persist(&self, w: &mut Writer) {
        w.str(self);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        r.str()
    }
}

// --- container impls -------------------------------------------------------

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.persist(w);
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        let n = r.seq_len()?;
        (0..n).map(|_| T::restore(r)).collect()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut Writer) {
        match self {
            Some(v) => {
                w.bool(true);
                v.persist(w);
            }
            None => w.bool(false),
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(if r.bool()? { Some(T::restore(r)?) } else { None })
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<const N: usize> Persist for [u64; N] {
    fn persist(&self, w: &mut Writer) {
        for &x in self {
            w.u64(x);
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        let mut out = [0u64; N];
        for x in &mut out {
            *x = r.u64()?;
        }
        Ok(out)
    }
}

impl Persist for std::path::PathBuf {
    fn persist(&self, w: &mut Writer) {
        w.str(&self.display().to_string());
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(r.str()?.into())
    }
}

impl Persist for crate::rngx::StdRng {
    fn persist(&self, w: &mut Writer) {
        self.state().persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(Self::from_state(<[u64; 4]>::restore(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(&T::restore(&mut r).unwrap(), v);
        assert!(r.is_exhausted(), "trailing bytes after round-trip");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&42u8);
        round_trip(&7u32);
        round_trip(&u64::MAX);
        round_trip(&1234usize);
        round_trip(&true);
        round_trip(&false);
        round_trip(&"héllo".to_string());
        round_trip(&std::path::PathBuf::from("a/b/c.ckpt"));
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut w = Writer::new();
            v.persist(&mut w);
            let bytes = w.into_bytes();
            let back = f64::restore(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1.0f64, -2.5, 3.25]);
        round_trip(&vec![vec![1usize, 2], vec![]]);
        round_trip(&Some("x".to_string()));
        round_trip(&None::<String>);
        round_trip(&("key".to_string(), 0.5f64));
        round_trip(&[1u64, 2, 3, 4]);
    }

    #[test]
    fn rng_round_trip_preserves_stream() {
        let mut rng = crate::rngx::StdRng::seed_from_u64(9);
        let _ = rng.next_u64();
        let mut w = Writer::new();
        rng.persist(&mut w);
        let bytes = w.into_bytes();
        let mut restored = crate::rngx::StdRng::restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.next_u64(), rng.next_u64());
    }

    #[test]
    fn corrupt_lengths_error_cleanly() {
        // A huge vec length must be rejected before allocating.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Vec::<f64>::restore(&mut Reader::new(&bytes)).is_err());
        // Truncated payloads error, never panic.
        let mut w = Writer::new();
        "hello".to_string().persist(&mut w);
        let bytes = w.into_bytes();
        assert!(String::restore(&mut Reader::new(&bytes[..bytes.len() - 1])).is_err());
    }
}
