//! Medical case study in the spirit of the paper's Fig. 15: build a
//! cardiovascular-risk dataset from named physiological columns, let
//! FASTFT discover crossings, and print them with their real column names
//! so a domain expert can read them (e.g. `weight/(active*dbp)`).

use fastft_core::{FastFt, FastFtConfig};
use fastft_tabular::rngx;
use fastft_tabular::{Column, Dataset, TaskType};

/// Substitute column names into a traceable `fN`-style expression string.
fn humanize(expr: &str, names: &[&str]) -> String {
    let mut out = String::with_capacity(expr.len() * 2);
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'f' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let idx: usize = expr[i + 1..j].parse().unwrap();
            out.push_str(names.get(idx).copied().unwrap_or("?"));
            i = j;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn main() {
    // Named physiological features with a planted risk structure: risk
    // rises with weight-normalised blood pressure and falls with activity —
    // the kind of ratio feature the paper's case study surfaces.
    let names = ["age", "weight", "height", "sbp", "dbp", "active", "chol"];
    let mut rng = rngx::rng(42);
    let n = 800;
    let age: Vec<f64> = (0..n).map(|_| 45.0 + 12.0 * rngx::normal(&mut rng)).collect();
    let height: Vec<f64> = (0..n).map(|_| 1.70 + 0.1 * rngx::normal(&mut rng)).collect();
    let weight: Vec<f64> =
        height.iter().map(|h| 25.0 * h * h + 8.0 * rngx::normal(&mut rng).abs()).collect();
    let active: Vec<f64> = (0..n).map(|_| 1.0 + rngx::normal(&mut rng).abs()).collect();
    let dbp: Vec<f64> = weight
        .iter()
        .zip(&active)
        .map(|(w, a)| 60.0 + 0.3 * w - 5.0 * a + 5.0 * rngx::normal(&mut rng))
        .collect();
    let sbp: Vec<f64> = dbp.iter().map(|d| d + 35.0 + 8.0 * rngx::normal(&mut rng)).collect();
    let chol: Vec<f64> =
        age.iter().map(|a| 3.5 + 0.02 * a + 0.5 * rngx::normal(&mut rng)).collect();

    // Risk: abnormal DBP relative to weight and activity + BMI + age.
    let risk: Vec<f64> = (0..n)
        .map(|i| {
            let bmi = weight[i] / (height[i] * height[i]);
            let dbp_anomaly = dbp[i] / (weight[i] * 0.3 + 60.0 - 5.0 * active[i]);
            0.8 * dbp_anomaly + 0.05 * bmi + 0.01 * age[i] + 0.1 * rngx::normal(&mut rng)
        })
        .collect();
    let cut = {
        let mut s = risk.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[n / 2]
    };
    let y: Vec<f64> = risk.iter().map(|&r| f64::from(u8::from(r > cut))).collect();

    let columns: Vec<Column> = names
        .iter()
        .zip([age, weight, height, sbp, dbp, active, chol])
        .map(|(n, v)| Column::new(*n, v))
        .collect();
    let mut data =
        Dataset::new("cardio_case_study", columns, y, TaskType::Classification, 2).unwrap();
    data.sanitize();

    let result = FastFt::new(FastFtConfig::quick()).fit(&data).expect("FASTFT fit");
    println!(
        "cardiovascular case study: F1 {:.4} -> {:.4}\n",
        result.base_score, result.best_score
    );
    println!("traceable features discovered (human-readable):");
    for e in &result.best_exprs {
        let s = e.to_string();
        if s.len() > 2 {
            println!("  {}", humanize(&s, &names));
        }
    }
    println!("\nfeatures generated at the top reward peaks:");
    let mut peaks: Vec<&fastft_core::StepRecord> =
        result.records.iter().filter(|r| !r.new_exprs.is_empty()).collect();
    peaks.sort_by(|a, b| b.reward.partial_cmp(&a.reward).unwrap());
    for rec in peaks.iter().take(3) {
        println!(
            "  episode {} step {} (reward {:+.4}): {}",
            rec.episode,
            rec.step,
            rec.reward,
            rec.new_exprs
                .iter()
                .take(2)
                .map(|e| humanize(e, &names))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
