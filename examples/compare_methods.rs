//! Compare FASTFT against the baseline methods on one dataset — a small
//! interactive version of the paper's Table I / Fig. 9.
//!
//! ```text
//! cargo run --release -p fastft-examples --bin compare_methods [dataset]
//! ```

use fastft_baselines::{all_methods, RunContext};
use fastft_ml::Evaluator;
use fastft_runtime::Runtime;
use fastft_tabular::{datagen, FastFtResult};

fn main() -> FastFtResult<()> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "svmguide3".into());
    let spec = datagen::by_name(&name).expect("dataset in the paper catalog");
    let mut data = datagen::generate_capped(spec, 500, 0);
    data.sanitize();
    let evaluator = Evaluator::default();
    let runtime = Runtime::from_env();
    let base = evaluator.evaluate(&data)?;
    println!(
        "dataset: {name} ({} rows x {} cols) | base {} = {base:.4}\n",
        data.n_rows(),
        data.n_features(),
        evaluator.metric_for(data.task).label()
    );
    println!("{:<10} {:>8} {:>10} {:>8}", "method", "score", "time (s)", "evals");
    println!("{}", "-".repeat(40));
    let mut results: Vec<(String, f64, f64, usize)> = Vec::new();
    for method in all_methods() {
        let ctx = RunContext::new(&evaluator, &runtime, 0);
        let r = method.run(&data, &ctx)?;
        results.push((r.name.to_string(), r.score, r.total_time_secs(), r.downstream_evals));
    }
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (n, s, t, e) in results {
        println!("{n:<10} {s:>8.4} {t:>10.2} {e:>8}");
    }
    Ok(())
}
