//! Crash-safe runs: stop a search on a budget, then resume it from its
//! checkpoint and finish with a bitwise-identical result.
//!
//! ```text
//! cargo run --release -p fastft-examples --bin checkpoint_resume
//! ```
//!
//! The first run writes a checkpoint at every episode boundary and stops
//! when its downstream-evaluation budget runs out (as a crash would, only
//! politely). The second run resumes from the file with the budget lifted
//! and completes. A third, uninterrupted run confirms the resumed result
//! matches exactly.

use fastft_core::{FastFt, FastFtConfig, StopReason};
use fastft_tabular::{datagen, FastFtResult};

fn main() -> FastFtResult<()> {
    let spec = datagen::by_name("pima_indian").expect("catalog dataset");
    let mut data = datagen::generate_capped(spec, 150, 0);
    data.sanitize();

    let ckpt = std::env::temp_dir().join(format!("fastft-example-{}.ckpt", std::process::id()));
    let cfg = FastFtConfig {
        episodes: 6,
        steps_per_episode: 4,
        cold_start_episodes: 2,
        checkpoint_every: 1,
        checkpoint_path: Some(ckpt.clone()),
        max_downstream_evals: 10,
        ..FastFtConfig::quick()
    };

    println!("run 1: budget of 10 downstream evaluations, checkpoint per episode");
    let stopped = FastFt::new(cfg.clone()).fit(&data)?;
    println!(
        "  stopped by {:?} after {} records, best {:.4}",
        stopped.stop_reason,
        stopped.records.len(),
        stopped.best_score
    );
    assert_eq!(stopped.stop_reason, StopReason::EvalBudget);

    println!("run 2: resume from {} with the budget lifted", ckpt.display());
    let resumed = FastFt::resume_with(&ckpt, &data, |c| c.max_downstream_evals = 0)?;
    println!(
        "  completed: {} records, best {:.4} ({:?})",
        resumed.records.len(),
        resumed.best_score,
        resumed.stop_reason
    );

    println!("run 3: the same search uninterrupted, for comparison");
    let mut full_cfg = cfg;
    full_cfg.max_downstream_evals = 0;
    full_cfg.checkpoint_every = 0;
    full_cfg.checkpoint_path = None;
    let full = FastFt::new(full_cfg).fit(&data)?;

    assert_eq!(resumed.best_score, full.best_score);
    assert_eq!(resumed.best_exprs, full.best_exprs);
    assert_eq!(resumed.records, full.records);
    println!(
        "  parity: best {:.4} == {:.4}, {} records identical",
        resumed.best_score,
        full.best_score,
        full.records.len()
    );

    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
