//! Quickstart: run FASTFT on a benchmark dataset analog and print the
//! improvement plus the traceable feature expressions it found.
//!
//! ```text
//! cargo run --release -p fastft-examples --bin quickstart [dataset] [seed]
//! ```

use fastft_core::{FastFt, FastFtConfig};
use fastft_tabular::{datagen, FastFtResult};

fn main() -> FastFtResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("pima_indian");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);

    let spec = datagen::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown dataset `{name}`; available:");
        for s in &datagen::PAPER_CATALOG {
            eprintln!("  {} ({} rows x {} cols, {})", s.name, s.rows, s.cols, s.task);
        }
        std::process::exit(2);
    });
    let mut data = datagen::generate_capped(spec, 600, seed);
    data.sanitize();
    println!(
        "dataset: {name} ({} rows x {} cols, {} task)",
        data.n_rows(),
        data.n_features(),
        data.task
    );

    let cfg = FastFtConfig { seed, ..FastFtConfig::quick() };
    let result = FastFt::new(cfg).fit(&data)?;

    println!("\nbase score:  {:.4}", result.base_score);
    println!(
        "best score:  {:.4}  (+{:.4})",
        result.best_score,
        result.best_score - result.base_score
    );
    println!(
        "downstream evaluations: {} | predictor calls: {}",
        result.telemetry.downstream_evals, result.telemetry.predictor_calls
    );
    println!(
        "time: {:.1}s total ({:.1}s evaluation, {:.1}s estimation, {:.1}s optimization)",
        result.telemetry.total_secs,
        result.telemetry.evaluation_secs,
        result.telemetry.estimation_secs,
        result.telemetry.optimization_secs
    );
    println!("\nbest feature set ({} features):", result.best_exprs.len());
    for e in &result.best_exprs {
        println!("  {e}");
    }
    Ok(())
}
