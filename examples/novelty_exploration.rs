//! Demonstrates the Novelty Estimator (random network distillation) and
//! the novelty-distance metric of §VI-H: novelty is high on unseen
//! transformation sequences, collapses once they are trained on, and the
//! novelty reward keeps FASTFT generating fresh feature combinations.

use fastft_core::novelty::NoveltyEstimator;
use fastft_core::predictor::PredictorConfig;
use fastft_core::sequence::{encode_feature_set, TokenVocab};
use fastft_core::transform::FeatureSet;
use fastft_core::{FastFt, FastFtConfig, Op};
use fastft_tabular::{datagen, rngx};

fn main() {
    // --- RND mechanics on hand-built sequences --------------------------
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut data = datagen::generate_capped(spec, 300, 0);
    data.sanitize();
    let vocab = TokenVocab::new(data.n_features());
    let mut estimator = NoveltyEstimator::new(vocab.size(), PredictorConfig::default(), 7);

    let fs = FeatureSet::from_original(&data);
    let mut rng = rngx::rng(1);
    let mut seen = Vec::new();
    for head in [0usize, 1, 2] {
        let gen = fs.cross(&[head], Op::Multiply, Some(&[head + 1]), 4, &mut rng);
        let mut exprs = fs.exprs.clone();
        exprs.extend(gen.into_iter().map(|(e, _)| e));
        seen.push(encode_feature_set(&exprs, &vocab, 128));
    }
    println!("novelty before training on the sequences:");
    for (i, s) in seen.iter().enumerate() {
        println!("  seq {i}: {:.4}", estimator.novelty(s));
    }
    for _ in 0..60 {
        for s in &seen {
            estimator.train_step(s);
        }
    }
    println!("after 60 distillation epochs (familiar sequences):");
    for (i, s) in seen.iter().enumerate() {
        println!("  seq {i}: {:.6}", estimator.novelty(s));
    }
    let unseen = {
        let gen = fs.cross(&[5], Op::Divide, Some(&[6]), 4, &mut rng);
        let mut exprs = fs.exprs.clone();
        exprs.extend(gen.into_iter().map(|(e, _)| e));
        encode_feature_set(&exprs, &vocab, 128)
    };
    println!("an unseen crossing stays novel: {:.4}\n", estimator.novelty(&unseen));

    // --- effect inside the full framework (Fig. 14 in miniature) --------
    let cfg = FastFtConfig::quick();
    let with = FastFt::new(cfg.clone()).fit(&data).expect("FASTFT fit");
    let without = FastFt::new(cfg.without_novelty()).fit(&data).expect("FASTFT fit");
    let new_with = with.records.iter().filter(|r| r.new_combination).count();
    let new_without = without.records.iter().filter(|r| r.new_combination).count();
    let avg = |r: &fastft_core::RunResult| {
        r.records.iter().map(|x| x.novelty_distance).sum::<f64>() / r.records.len() as f64
    };
    println!(
        "FASTFT     : {new_with} new combinations, avg novelty distance {:.4}, best {:.4}",
        avg(&with),
        with.best_score
    );
    println!(
        "FASTFT -NE : {new_without} new combinations, avg novelty distance {:.4}, best {:.4}",
        avg(&without),
        without.best_score
    );
}
