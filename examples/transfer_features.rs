//! Train/serve workflow: discover a feature set with FASTFT on one sample
//! of a dataset, save it as plain text, then re-load and apply it to a
//! *fresh* sample drawn from the same distribution — the deployment pattern
//! the traceable expression format enables.

use fastft_core::report::{apply_feature_set, load_feature_set, save_feature_set, summary};
use fastft_core::{FastFt, FastFtConfig};
use fastft_ml::Evaluator;
use fastft_tabular::{datagen, FastFtResult};

fn main() -> FastFtResult<()> {
    let spec = datagen::by_name("svmguide3").unwrap();
    // "Training-time" sample.
    let mut train = datagen::generate_capped(spec, 500, 0);
    train.sanitize();
    let result = FastFt::new(FastFtConfig::quick()).fit(&train)?;
    println!("--- search on the training sample ---");
    print!("{}", summary(&result));

    // Save the discovered feature set as text (what you'd commit/ship).
    let saved = save_feature_set(&result.best_exprs);
    println!("--- saved feature set ({} bytes) ---\n{saved}", saved.len());

    // "Serving-time": a fresh sample from the same generator (different
    // seed = different rows), transformed with the re-loaded expressions.
    let mut fresh = datagen::generate_capped(spec, 500, 99);
    fresh.sanitize();
    let exprs = load_feature_set(&saved).expect("saved text parses");
    let transformed = apply_feature_set(&fresh, &exprs).expect("schema matches");

    let evaluator = Evaluator::default();
    let base = evaluator.evaluate(&fresh)?;
    let with = evaluator.evaluate(&transformed)?;
    println!("--- fresh sample ---");
    println!("original features : F1 = {base:.4}");
    println!("transferred set   : F1 = {with:.4} ({:+.4})", with - base);
    Ok(())
}
