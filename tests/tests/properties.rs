//! Property-based tests over the workspace's core invariants.

use fastft_core::sequence::{canonical_key, encode_feature_set, TokenVocab};
use fastft_core::{Expr, Op};
use fastft_rl::PrioritizedReplay;
use fastft_tabular::metrics;
use fastft_tabular::mi;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random expression over `n_base` features with bounded depth.
fn arb_expr(n_base: usize, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (0..n_base).prop_map(Expr::base).boxed();
    leaf.prop_recursive(depth, 32, 2, move |inner| {
        prop_oneof![
            (0..8usize, inner.clone()).prop_map(|(op, e)| {
                let unary: Vec<Op> = Op::unary().collect();
                Expr::unary(unary[op], e)
            }),
            (0..4usize, inner.clone(), inner).prop_map(|(op, a, b)| {
                let binary: Vec<Op> = Op::binary().collect();
                Expr::binary(binary[op], a, b)
            }),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expr_eval_is_always_finite(e in arb_expr(4, 4), rows in 1usize..20) {
        let base: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..rows).map(|i| ((i * 7 + j * 3) as f64 - 10.0) * 1e3).collect())
            .collect();
        let col = e.eval(&base);
        prop_assert_eq!(col.len(), rows);
        // Guarded ops keep everything finite on finite input.
        prop_assert!(col.iter().all(|v| v.is_finite()), "{} -> {:?}", e, col);
    }

    #[test]
    fn expr_display_roundtrip_consistency(e in arb_expr(4, 4)) {
        // Display is injective enough for dedup: equal strings imply equal
        // column semantics (checked by evaluating on a probe matrix).
        let e2 = e.clone();
        prop_assert_eq!(e.to_string(), e2.to_string());
        prop_assert!(e.base_features().iter().all(|&i| i < 4));
        prop_assert!(e.depth() <= e.size());
    }

    #[test]
    fn encode_respects_max_len(es in prop::collection::vec(arb_expr(4, 3), 1..10), max_len in 4usize..64) {
        let vocab = TokenVocab::new(4);
        let ids = encode_feature_set(&es, &vocab, max_len);
        prop_assert!(ids.len() <= max_len);
        prop_assert!(ids.iter().all(|&id| id < vocab.size()));
        prop_assert_eq!(ids[0], vocab.id(fastft_core::sequence::Token::Start));
        prop_assert_eq!(*ids.last().unwrap(), vocab.id(fastft_core::sequence::Token::End));
    }

    #[test]
    fn canonical_key_order_invariance(mut es in prop::collection::vec(arb_expr(3, 3), 1..6)) {
        let k1 = canonical_key(&es);
        es.reverse();
        prop_assert_eq!(k1, canonical_key(&es));
    }

    #[test]
    fn replay_never_exceeds_capacity(
        cap in 1usize..16,
        pushes in prop::collection::vec((any::<i32>(), -10.0f64..10.0), 0..64),
    ) {
        let mut buf = PrioritizedReplay::new(cap);
        for (item, delta) in pushes {
            buf.push(item, delta);
            prop_assert!(buf.len() <= cap);
        }
        let mut rng = StdRng::seed_from_u64(1);
        if !buf.is_empty() {
            prop_assert!(buf.sample(&mut rng).is_some());
        }
    }

    #[test]
    fn f1_bounded(labels in prop::collection::vec(0usize..3, 1..50), preds_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(preds_seed);
        use rand::Rng;
        let preds: Vec<usize> = labels.iter().map(|_| rng.gen_range(0..3)).collect();
        let f1 = metrics::f1_macro(&labels, &preds, 3);
        prop_assert!((0.0..=1.0).contains(&f1));
        let p = metrics::precision_macro(&labels, &preds, 3);
        let r = metrics::recall_macro(&labels, &preds, 3);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn auc_bounded_and_flip_symmetric(scores in prop::collection::vec(-10.0f64..10.0, 2..40), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<usize> = scores.iter().map(|_| rng.gen_range(0..2)).collect();
        let auc = metrics::auc(&labels, &scores);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating the scores reflects the AUC around 0.5 (when both
        // classes are present).
        let n_pos = labels.iter().filter(|&&y| y == 1).count();
        if n_pos > 0 && n_pos < labels.len() {
            let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
            let flipped = metrics::auc(&labels, &neg);
            prop_assert!((auc + flipped - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mi_nonnegative_and_symmetric(a in prop::collection::vec(-5.0f64..5.0, 10..60), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let b: Vec<f64> = a.iter().map(|_| rng.gen::<f64>()).collect();
        let ab = mi::mi_continuous(&a, &b, 6);
        let ba = mi::mi_continuous(&b, &a, 6);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn quantile_bins_in_range(values in prop::collection::vec(-100.0f64..100.0, 1..80), n_bins in 1usize..20) {
        let bins = mi::quantile_bins(&values, n_bins);
        prop_assert_eq!(bins.len(), values.len());
        prop_assert!(bins.iter().all(|&b| b < n_bins));
        // Equal values always share a bin.
        for (i, vi) in values.iter().enumerate() {
            for (j, vj) in values.iter().enumerate() {
                if vi == vj {
                    prop_assert_eq!(bins[i], bins[j]);
                }
            }
        }
    }

    #[test]
    fn parse_display_round_trip(e in arb_expr(6, 5)) {
        let text = e.to_string();
        let back = fastft_core::parse_expr(&text).expect("display output parses");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn ops_total_on_arbitrary_finite_scalars(x in -1e9f64..1e9, y in -1e9f64..1e9) {
        for op in Op::unary() {
            prop_assert!(op.apply_unary_scalar(x).is_finite(), "{op:?}({x})");
        }
        for op in Op::binary() {
            prop_assert!(op.apply_binary_scalar(x, y).is_finite(), "{op:?}({x},{y})");
        }
    }

    #[test]
    fn orthogonal_init_is_orthogonal(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use fastft_nn::init;
        let gain = 2.5;
        let m = init::orthogonal(&mut init::rng(seed), rows, cols, gain);
        let k = rows.min(cols);
        // Gram matrix of the smaller dimension is gain² I.
        let gram = if rows <= cols { m.matmul_nt(&m) } else { m.matmul_tn(&m) };
        for i in 0..k {
            for j in 0..k {
                let expect = if i == j { gain * gain } else { 0.0 };
                prop_assert!((gram[(i, j)] - expect).abs() < 1e-6, "gram[{i}][{j}]={}", gram[(i, j)]);
            }
        }
    }

    #[test]
    fn kfold_always_partitions(n in 4usize..120, k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let kf = fastft_tabular::KFold::new(n, k, seed);
        let mut all: Vec<usize> = kf.iter().flat_map(|(_, t)| t).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for (train, test) in kf.iter() {
            prop_assert_eq!(train.len() + test.len(), n);
        }
    }

    #[test]
    fn exp_decay_bounded_monotone(start in 0.01f64..1.0, end in 0.0001f64..0.01, m in 10.0f64..5000.0) {
        let s = fastft_rl::ExpDecay { start, end, m };
        let mut prev = f64::MAX;
        for i in (0..10_000).step_by(500) {
            let v = s.at(i);
            prop_assert!(v <= prev + 1e-12);
            prop_assert!(v <= start + 1e-12 && v >= end - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn describe_stats_ordered(values in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let d = fastft_tabular::stats::describe(&values);
        // min <= q1 <= median <= q3 <= max, std >= 0.
        prop_assert!(d[2] <= d[3] + 1e-9);
        prop_assert!(d[3] <= d[4] + 1e-9);
        prop_assert!(d[4] <= d[5] + 1e-9);
        prop_assert!(d[5] <= d[6] + 1e-9);
        prop_assert!(d[1] >= 0.0);
        prop_assert!(d[0] >= d[2] - 1e-9 && d[0] <= d[6] + 1e-9);
    }
}
