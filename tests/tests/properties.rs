//! Randomized property tests over the workspace's core invariants.
//!
//! Ported from `proptest` to the in-repo `rngx` generators so the workspace
//! builds offline with zero external dependencies. Each property draws its
//! cases from a seeded [`StdRng`], so failures are reproducible: the case
//! index is part of every assertion message.
//!
//! The suite is opt-in (it multiplies test time by its case counts):
//! `cargo test -p integration-tests --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use fastft_core::sequence::{canonical_key, encode_feature_set, Token, TokenVocab};
use fastft_core::{Expr, Op};
use fastft_rl::PrioritizedReplay;
use fastft_tabular::metrics;
use fastft_tabular::mi;
use fastft_tabular::rngx::StdRng;

const CASES: u64 = 64;

/// Draw a random expression over `n_base` features with depth ≤ `depth`.
fn arb_expr(rng: &mut StdRng, n_base: usize, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return Expr::base(rng.gen_range(0..n_base));
    }
    if rng.gen_bool(0.5) {
        let unary: Vec<Op> = Op::unary().collect();
        let op = unary[rng.gen_range(0..unary.len())];
        Expr::unary(op, arb_expr(rng, n_base, depth - 1))
    } else {
        let binary: Vec<Op> = Op::binary().collect();
        let op = binary[rng.gen_range(0..binary.len())];
        let a = arb_expr(rng, n_base, depth - 1);
        let b = arb_expr(rng, n_base, depth - 1);
        Expr::binary(op, a, b)
    }
}

fn arb_vec(rng: &mut StdRng, len: std::ops::Range<usize>, range: std::ops::Range<f64>) -> Vec<f64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(range.clone())).collect()
}

#[test]
fn expr_eval_is_always_finite() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for case in 0..CASES {
        let e = arb_expr(&mut rng, 4, 4);
        let rows = rng.gen_range(1..20usize);
        let base: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..rows).map(|i| ((i * 7 + j * 3) as f64 - 10.0) * 1e3).collect())
            .collect();
        let col = e.eval(&base);
        assert_eq!(col.len(), rows, "case {case}");
        // Guarded ops keep everything finite on finite input.
        assert!(col.iter().all(|v| v.is_finite()), "case {case}: {e} -> {col:?}");
    }
}

#[test]
fn expr_display_roundtrip_consistency() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for case in 0..CASES {
        let e = arb_expr(&mut rng, 4, 4);
        // Display is injective enough for dedup: equal strings imply equal
        // column semantics.
        let e2 = e.clone();
        assert_eq!(e.to_string(), e2.to_string(), "case {case}");
        assert!(e.base_features().iter().all(|&i| i < 4), "case {case}");
        assert!(e.depth() <= e.size(), "case {case}");
    }
}

#[test]
fn encode_respects_max_len() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for case in 0..CASES {
        let n = rng.gen_range(1..10usize);
        let es: Vec<Expr> = (0..n).map(|_| arb_expr(&mut rng, 4, 3)).collect();
        let max_len = rng.gen_range(4..64usize);
        let vocab = TokenVocab::new(4);
        let ids = encode_feature_set(&es, &vocab, max_len);
        assert!(ids.len() <= max_len, "case {case}");
        assert!(ids.iter().all(|&id| id < vocab.size()), "case {case}");
        assert_eq!(ids[0], vocab.id(Token::Start), "case {case}");
        assert_eq!(*ids.last().unwrap(), vocab.id(Token::End), "case {case}");
    }
}

#[test]
fn canonical_key_order_invariance() {
    let mut rng = StdRng::seed_from_u64(0xE4);
    for case in 0..CASES {
        let n = rng.gen_range(1..6usize);
        let mut es: Vec<Expr> = (0..n).map(|_| arb_expr(&mut rng, 3, 3)).collect();
        let k1 = canonical_key(&es);
        es.reverse();
        assert_eq!(k1, canonical_key(&es), "case {case}");
    }
}

#[test]
fn replay_never_exceeds_capacity() {
    let mut rng = StdRng::seed_from_u64(0xE5);
    for case in 0..CASES {
        let cap = rng.gen_range(1..16usize);
        let n_pushes = rng.gen_range(0..64usize);
        let mut buf = PrioritizedReplay::new(cap);
        for _ in 0..n_pushes {
            let item = rng.gen::<u32>() as i32;
            let delta = rng.gen_range(-10.0..10.0);
            buf.push(item, delta);
            assert!(buf.len() <= cap, "case {case}");
        }
        let mut sample_rng = StdRng::seed_from_u64(1);
        if !buf.is_empty() {
            assert!(buf.sample(&mut sample_rng).is_some(), "case {case}");
        }
    }
}

#[test]
fn f1_bounded() {
    let mut rng = StdRng::seed_from_u64(0xE6);
    for case in 0..CASES {
        let n = rng.gen_range(1..50usize);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
        let preds: Vec<usize> = labels.iter().map(|_| rng.gen_range(0..3usize)).collect();
        let f1 = metrics::f1_macro(&labels, &preds, 3);
        assert!((0.0..=1.0).contains(&f1), "case {case}");
        let p = metrics::precision_macro(&labels, &preds, 3);
        let r = metrics::recall_macro(&labels, &preds, 3);
        assert!((0.0..=1.0).contains(&p), "case {case}");
        assert!((0.0..=1.0).contains(&r), "case {case}");
    }
}

#[test]
fn auc_bounded_and_flip_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xE7);
    for case in 0..CASES {
        let scores = arb_vec(&mut rng, 2..40, -10.0..10.0);
        let labels: Vec<usize> = scores.iter().map(|_| rng.gen_range(0..2usize)).collect();
        let auc = metrics::auc(&labels, &scores);
        assert!((0.0..=1.0).contains(&auc), "case {case}");
        // Negating the scores reflects the AUC around 0.5 (when both
        // classes are present).
        let n_pos = labels.iter().filter(|&&y| y == 1).count();
        if n_pos > 0 && n_pos < labels.len() {
            let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
            let flipped = metrics::auc(&labels, &neg);
            assert!((auc + flipped - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn mi_nonnegative_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xE8);
    for case in 0..CASES {
        let a = arb_vec(&mut rng, 10..60, -5.0..5.0);
        let b: Vec<f64> = a.iter().map(|_| rng.gen::<f64>()).collect();
        let ab = mi::mi_continuous(&a, &b, 6);
        let ba = mi::mi_continuous(&b, &a, 6);
        assert!(ab >= 0.0, "case {case}");
        assert!((ab - ba).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn quantile_bins_in_range() {
    let mut rng = StdRng::seed_from_u64(0xE9);
    for case in 0..CASES {
        let values = arb_vec(&mut rng, 1..80, -100.0..100.0);
        let n_bins = rng.gen_range(1..20usize);
        let bins = mi::quantile_bins(&values, n_bins);
        assert_eq!(bins.len(), values.len(), "case {case}");
        assert!(bins.iter().all(|&b| b < n_bins), "case {case}");
        // Equal values always share a bin.
        for (i, vi) in values.iter().enumerate() {
            for (j, vj) in values.iter().enumerate() {
                if vi == vj {
                    assert_eq!(bins[i], bins[j], "case {case}");
                }
            }
        }
    }
}

#[test]
fn parse_display_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xEA);
    for case in 0..CASES {
        let e = arb_expr(&mut rng, 6, 5);
        let text = e.to_string();
        let back = fastft_core::parse_expr(&text).expect("display output parses");
        assert_eq!(back, e, "case {case}");
    }
}

#[test]
fn ops_total_on_arbitrary_finite_scalars() {
    let mut rng = StdRng::seed_from_u64(0xEB);
    for case in 0..CASES {
        let x = rng.gen_range(-1e9..1e9);
        let y = rng.gen_range(-1e9..1e9);
        for op in Op::unary() {
            assert!(op.apply_unary_scalar(x).is_finite(), "case {case}: {op:?}({x})");
        }
        for op in Op::binary() {
            assert!(op.apply_binary_scalar(x, y).is_finite(), "case {case}: {op:?}({x},{y})");
        }
    }
}

#[test]
fn orthogonal_init_is_orthogonal() {
    use fastft_nn::init;
    let mut rng = StdRng::seed_from_u64(0xEC);
    for case in 0..CASES {
        let rows = rng.gen_range(1..8usize);
        let cols = rng.gen_range(1..8usize);
        let seed = rng.gen::<u64>();
        let gain = 2.5;
        let m = init::orthogonal(&mut init::rng(seed), rows, cols, gain);
        let k = rows.min(cols);
        // Gram matrix of the smaller dimension is gain² I.
        let gram = if rows <= cols { m.matmul_nt(&m) } else { m.matmul_tn(&m) };
        for i in 0..k {
            for j in 0..k {
                let expect = if i == j { gain * gain } else { 0.0 };
                assert!(
                    (gram[(i, j)] - expect).abs() < 1e-6,
                    "case {case}: gram[{i}][{j}]={}",
                    gram[(i, j)]
                );
            }
        }
    }
}

#[test]
fn kfold_always_partitions() {
    let mut rng = StdRng::seed_from_u64(0xED);
    for case in 0..CASES {
        let k = rng.gen_range(2..6usize);
        let n = rng.gen_range(k.max(4)..120usize);
        let seed = rng.gen::<u64>();
        let kf = fastft_tabular::KFold::new(n, k, seed);
        let mut all: Vec<usize> = kf.iter().flat_map(|(_, t)| t).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "case {case}");
        for (train, test) in kf.iter() {
            assert_eq!(train.len() + test.len(), n, "case {case}");
        }
    }
}

#[test]
fn exp_decay_bounded_monotone() {
    let mut rng = StdRng::seed_from_u64(0xEE);
    for case in 0..CASES {
        let start = rng.gen_range(0.01..1.0);
        let end = rng.gen_range(0.0001..0.01);
        let m = rng.gen_range(10.0..5000.0);
        let s = fastft_rl::ExpDecay { start, end, m };
        let mut prev = f64::MAX;
        for i in (0..10_000).step_by(500) {
            let v = s.at(i);
            assert!(v <= prev + 1e-12, "case {case}");
            assert!(v <= start + 1e-12 && v >= end - 1e-12, "case {case}");
            prev = v;
        }
    }
}

#[test]
fn describe_stats_ordered() {
    let mut rng = StdRng::seed_from_u64(0xEF);
    for case in 0..CASES {
        let values = arb_vec(&mut rng, 1..60, -1e6..1e6);
        let d = fastft_tabular::stats::describe(&values);
        // min <= q1 <= median <= q3 <= max, std >= 0.
        assert!(d[2] <= d[3] + 1e-9, "case {case}");
        assert!(d[3] <= d[4] + 1e-9, "case {case}");
        assert!(d[4] <= d[5] + 1e-9, "case {case}");
        assert!(d[5] <= d[6] + 1e-9, "case {case}");
        assert!(d[1] >= 0.0, "case {case}");
        assert!(d[0] >= d[2] - 1e-9 && d[0] <= d[6] + 1e-9, "case {case}");
    }
}
