//! Integration across the baseline registry: every Table I method runs on
//! every task type, produces consistent artifacts, and respects the shared
//! evaluator.

use fastft_baselines::{all_methods, standard_methods, RunContext};
use fastft_ml::Evaluator;
use fastft_runtime::Runtime;
use fastft_tabular::datagen;

fn load(name: &str, rows: usize) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, 0);
    d.sanitize();
    d
}

#[test]
fn every_method_runs_on_classification() {
    let data = load("pima_indian", 150);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in all_methods() {
        let r = method.run(&data, &RunContext::new(&ev, &rt, 0)).unwrap();
        assert!((0.0..=1.0).contains(&r.score), "{}: score {}", method.name(), r.score);
        assert_eq!(r.dataset().n_rows(), data.n_rows(), "{}", method.name());
        assert!(r.wall_time_secs > 0.0);
    }
}

#[test]
fn every_method_runs_on_regression() {
    let data = load("openml_620", 150);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in standard_methods() {
        let r = method.run(&data, &RunContext::new(&ev, &rt, 1)).unwrap();
        assert!(r.score.is_finite(), "{}: {}", method.name(), r.score);
    }
}

#[test]
fn every_method_runs_on_detection() {
    let data = load("thyroid", 400);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in standard_methods() {
        let r = method.run(&data, &RunContext::new(&ev, &rt, 2)).unwrap();
        assert!((0.0..=1.0).contains(&r.score), "{}: {}", method.name(), r.score);
    }
}

#[test]
fn transformed_datasets_keep_targets_intact() {
    // Definition 2: labels never change under feature transformation.
    let data = load("svmguide3", 150);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in all_methods() {
        let r = method.run(&data, &RunContext::new(&ev, &rt, 3)).unwrap();
        assert_eq!(r.dataset().targets, data.targets, "{} mutated targets", method.name());
        assert_eq!(r.dataset().task, data.task);
    }
}

#[test]
fn methods_are_deterministic_given_seed() {
    let data = load("pima_indian", 120);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in standard_methods() {
        let a = method.run(&data, &RunContext::new(&ev, &rt, 9)).unwrap();
        let b = method.run(&data, &RunContext::new(&ev, &rt, 9)).unwrap();
        assert_eq!(a.score, b.score, "{} nondeterministic", method.name());
        assert_eq!(a.downstream_evals, b.downstream_evals, "{}", method.name());
    }
}

#[test]
fn methods_are_deterministic_across_worker_counts() {
    // The tentpole guarantee: the same seed gives byte-identical scores no
    // matter how many workers the runtime runs.
    let data = load("pima_indian", 120);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt1 = Runtime::new(1);
    let rt4 = Runtime::new(4);
    for method in all_methods() {
        let a = method.run(&data, &RunContext::new(&ev, &rt1, 5)).unwrap();
        let b = method.run(&data, &RunContext::new(&ev, &rt4, 5)).unwrap();
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{} differs across worker counts",
            method.name()
        );
        let ea: Vec<String> = a.exprs().iter().map(ToString::to_string).collect();
        let eb: Vec<String> = b.exprs().iter().map(ToString::to_string).collect();
        assert_eq!(ea, eb, "{} feature set differs across worker counts", method.name());
    }
}

#[test]
fn only_caafe_reports_simulated_latency() {
    let data = load("pima_indian", 120);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = Runtime::new(1);
    for method in standard_methods() {
        let r = method.run(&data, &RunContext::new(&ev, &rt, 4)).unwrap();
        if method.name() == "CAAFE" {
            assert!(r.simulated_latency_secs > 0.0);
        } else {
            assert_eq!(r.simulated_latency_secs, 0.0, "{}", method.name());
        }
    }
}
