//! Cross-crate component integration: evaluation components against real
//! engine-produced sequences, downstream models against transformed data,
//! and the CSV round trip through a full transformation.

use fastft_core::novelty::NoveltyEstimator;
use fastft_core::predictor::{PerformancePredictor, PredictorConfig};
use fastft_core::sequence::{encode_feature_set, TokenVocab};
use fastft_core::transform::FeatureSet;
use fastft_core::Op;
use fastft_ml::{Evaluator, ModelKind};
use fastft_tabular::{csvio, datagen, rngx};

fn load(name: &str, rows: usize) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, 0);
    d.sanitize();
    d
}

/// Collect (sequence, downstream score) pairs the way the cold start does.
fn collect_pairs(data: &fastft_tabular::Dataset, n: usize) -> (TokenVocab, Vec<(Vec<usize>, f64)>) {
    let vocab = TokenVocab::new(data.n_features());
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let mut rng = rngx::rng(5);
    let mut out = Vec::new();
    let ops: Vec<Op> = Op::ALL.to_vec();
    for k in 0..n {
        let mut fs = FeatureSet::from_original(data);
        let op = ops[k % ops.len()];
        let head = vec![k % data.n_features()];
        let tail = vec![(k + 1) % data.n_features()];
        let generated = if op.is_binary() {
            fs.cross(&head, op, Some(&tail), 8, &mut rng)
        } else {
            fs.cross(&head, op, None, 8, &mut rng)
        };
        fs.extend(generated);
        let seq = encode_feature_set(&fs.exprs, &vocab, 128);
        let score = ev.evaluate(&fs.data).unwrap();
        out.push((seq, score));
    }
    (vocab, out)
}

#[test]
fn predictor_learns_real_engine_sequences() {
    let data = load("pima_indian", 200);
    let (vocab, pairs) = collect_pairs(&data, 12);
    let mut p = PerformancePredictor::new(
        vocab.size(),
        PredictorConfig { lr: 5e-3, ..PredictorConfig::default() },
        0,
    );
    let loss_of = |p: &PerformancePredictor| -> f64 {
        pairs
            .iter()
            .map(|(s, v)| {
                let d = p.predict(s) - v;
                d * d
            })
            .sum()
    };
    let before = loss_of(&p);
    for _ in 0..60 {
        for (s, v) in &pairs {
            p.train_step(s, *v);
        }
    }
    let after = loss_of(&p);
    assert!(after < 0.2 * before, "before {before}, after {after}");
}

#[test]
fn novelty_separates_seen_from_unseen_engine_sequences() {
    let data = load("pima_indian", 200);
    let (vocab, pairs) = collect_pairs(&data, 12);
    let (seen, unseen) = pairs.split_at(8);
    let mut ne = NoveltyEstimator::new(
        vocab.size(),
        PredictorConfig { lr: 5e-3, ..PredictorConfig::default() },
        1,
    );
    for _ in 0..80 {
        for (s, _) in seen {
            ne.train_step(s);
        }
    }
    let seen_avg: f64 = seen.iter().map(|(s, _)| ne.novelty(s)).sum::<f64>() / seen.len() as f64;
    let unseen_avg: f64 =
        unseen.iter().map(|(s, _)| ne.novelty(s)).sum::<f64>() / unseen.len() as f64;
    assert!(unseen_avg > seen_avg, "unseen {unseen_avg} should exceed seen {seen_avg}");
}

#[test]
fn transformed_dataset_roundtrips_through_csv() {
    let data = load("svmguide3", 120);
    let mut fs = FeatureSet::from_original(&data);
    let mut rng = rngx::rng(9);
    let generated = fs.cross(&[0, 1], Op::Multiply, Some(&[2, 3]), 8, &mut rng);
    fs.extend(generated);
    let dir = std::env::temp_dir().join("fastft_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("transformed.csv");
    csvio::write_csv(&fs.data, &path).unwrap();
    let back = csvio::read_csv(&path, "transformed", data.task, data.n_classes).unwrap();
    assert_eq!(back.n_features(), fs.data.n_features());
    // Traceable names survive the round trip.
    assert!(back.features.iter().any(|c| c.name.contains('*')));
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    assert_eq!(ev.evaluate(&fs.data).unwrap(), ev.evaluate(&back).unwrap());
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_downstream_model_scores_transformed_features() {
    let data = load("german_credit", 150);
    let mut fs = FeatureSet::from_original(&data);
    let mut rng = rngx::rng(11);
    let generated = fs.cross(&[0, 1, 2], Op::Plus, Some(&[3, 4]), 8, &mut rng);
    fs.extend(generated);
    fs.select_top(12, 10);
    for model in ModelKind::TABLE3 {
        let ev = Evaluator { model, folds: 3, ..Evaluator::default() };
        let s = ev.evaluate(&fs.data).unwrap();
        assert!((0.0..=1.0).contains(&s), "{model:?}: {s}");
    }
}
