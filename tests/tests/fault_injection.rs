//! Fault-isolated evaluation under a deterministic fault schedule: injected
//! panics, NaN scores, stalls and OOM-sized candidates must never crash a
//! run — they are retried, quarantined, and reported in the telemetry.
//!
//! Eval index 0 is the *base* evaluation of the original features, which is
//! deliberately unguarded (a dataset whose raw features cannot be scored is
//! a configuration error), so every schedule here targets index >= 1.

use fastft_core::{FastFt, FastFtConfig, StopReason};
use fastft_ml::{Evaluator, FaultKind, FaultPlan};
use fastft_tabular::datagen;

fn cfg(plan: FaultPlan) -> FastFtConfig {
    FastFtConfig {
        episodes: 5,
        steps_per_episode: 4,
        cold_start_episodes: 2,
        retrain_every: 2,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 3, fault_plan: Some(plan), ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

fn load(seed: u64) -> fastft_tabular::Dataset {
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, 150, seed);
    d.sanitize();
    d
}

/// Run under `plan`, returning the result and the shared plan handle (its
/// eval counter advances as the engine evaluates).
fn run_with(plan: FaultPlan, seed: u64) -> (fastft_core::RunResult, FaultPlan) {
    let handle = plan.clone();
    let result = FastFt::new(cfg(plan)).fit(&load(seed)).unwrap();
    (result, handle)
}

#[test]
fn single_panic_is_retried_and_the_run_completes() {
    let (result, plan) = run_with(FaultPlan::new(vec![FaultKind::PanicOnEval(2)]), 0);
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert!(result.best_score.is_finite());
    assert!(result.best_score >= result.base_score);
    // The fault fired (if eval 2 was reached) and the one-shot retry — eval
    // index 3 — succeeded, so nothing was quarantined.
    assert_eq!(result.telemetry.eval_faults, plan.scoring_faults_before(plan.evals_seen()));
    assert_eq!(result.telemetry.quarantined, 0);
    assert!(plan.evals_seen() > 2, "schedule never reached the faulted eval");
}

#[test]
fn nan_score_counts_as_a_fault_not_a_result() {
    let (result, plan) = run_with(FaultPlan::new(vec![FaultKind::NanScore(1)]), 1);
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert!(result.best_score.is_finite());
    assert!(result.records.iter().all(|r| r.score.is_finite()));
    assert_eq!(result.telemetry.eval_faults, plan.scoring_faults_before(plan.evals_seen()));
    assert_eq!(result.telemetry.eval_faults, 1);
}

#[test]
fn consecutive_faults_exhaust_retries_and_quarantine_the_candidate() {
    // eval_retries = 1 gives each candidate two attempts; faulting two
    // consecutive eval indices therefore burns both and forces quarantine.
    // The step falls back on the predictor and the run still completes.
    let plan = FaultPlan::new(vec![FaultKind::OomCandidate(3), FaultKind::PanicOnEval(4)]);
    let (result, _plan) = run_with(plan, 2);
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert!(result.best_score.is_finite());
    assert_eq!(result.telemetry.eval_faults, 2);
    assert_eq!(result.telemetry.quarantined, 1);
}

#[test]
fn stalls_are_not_faults() {
    let plan = FaultPlan::new(vec![
        FaultKind::SlowEval { eval: 1, millis: 2 },
        FaultKind::SlowEval { eval: 3, millis: 2 },
    ]);
    let (result, plan) = run_with(plan, 3);
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert_eq!(result.telemetry.eval_faults, 0);
    assert_eq!(result.telemetry.quarantined, 0);
    assert_eq!(plan.scoring_faults_before(usize::MAX), 0);
}

#[test]
fn seeded_schedule_is_survived_and_accounted_for() {
    // Find (deterministically) a seeded plan whose faults avoid the base
    // eval and don't stack on one index, so the engine's fault counter is
    // exactly predictable from the schedule.
    let seed = (0u64..)
        .find(|&s| {
            let faults = FaultPlan::seeded(s, 4, 12);
            let idx: Vec<usize> = faults
                .faults()
                .iter()
                .map(|f| match *f {
                    FaultKind::PanicOnEval(n)
                    | FaultKind::NanScore(n)
                    | FaultKind::OomCandidate(n) => n,
                    FaultKind::SlowEval { eval, .. } => eval,
                })
                .collect();
            idx.iter().all(|&i| i >= 1)
                && idx.iter().collect::<std::collections::HashSet<_>>().len() == idx.len()
        })
        .unwrap();
    let (result, plan) = run_with(FaultPlan::seeded(seed, 4, 12), 4);
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert!(result.best_score.is_finite());
    assert!(result.best_score >= result.base_score);
    assert_eq!(result.telemetry.eval_faults, plan.scoring_faults_before(plan.evals_seen()));
}

#[test]
fn faults_do_not_change_what_an_unfaulted_run_would_report_as_sane() {
    // A heavily faulted run and a clean run on the same data both produce
    // structurally valid results: finite scores everywhere, a best at
    // least as good as base, and a full trace.
    let clean = FastFt::new(cfg(FaultPlan::new(Vec::new()))).fit(&load(5)).unwrap();
    let plan = FaultPlan::new(vec![
        FaultKind::NanScore(2),
        FaultKind::PanicOnEval(5),
        FaultKind::OomCandidate(6),
        FaultKind::NanScore(9),
    ]);
    let (faulted, _) = run_with(plan, 5);
    for r in clean.records.iter().chain(&faulted.records) {
        assert!(r.score.is_finite());
        assert!(r.reward.is_finite());
    }
    assert!(faulted.best_score >= faulted.base_score);
    assert_eq!(faulted.episode_best.len(), clean.episode_best.len());
}
