//! Integration tests for the extensions beyond the paper: the GRU encoder
//! variant and the noise-robustness tooling.

use fastft_core::{FastFt, FastFtConfig};
use fastft_ml::Evaluator;
use fastft_nn::EncoderKind;
use fastft_tabular::{datagen, noise};

fn cfg() -> FastFtConfig {
    FastFtConfig {
        episodes: 4,
        steps_per_episode: 4,
        cold_start_episodes: 2,
        retrain_every: 1,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 3, ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

fn load(name: &str, rows: usize) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, 0);
    d.sanitize();
    d
}

#[test]
fn gru_encoder_drives_full_pipeline() {
    let data = load("pima_indian", 150);
    let c = FastFtConfig { encoder: EncoderKind::Gru { layers: 2 }, ..cfg() };
    let r = FastFt::new(c).fit(&data).unwrap();
    assert!(r.best_score >= r.base_score);
    assert!(r.telemetry.predictor_calls > 0);
}

#[test]
fn all_four_encoders_agree_on_api() {
    let data = load("pima_indian", 120);
    for enc in [
        EncoderKind::Lstm { layers: 1 },
        EncoderKind::Rnn { layers: 1 },
        EncoderKind::Gru { layers: 1 },
        EncoderKind::Transformer { heads: 2, blocks: 1 },
    ] {
        let c = FastFtConfig { encoder: enc, ..cfg() };
        let r = FastFt::new(c).fit(&data).unwrap();
        assert!(r.best_score.is_finite(), "{}", enc.label());
    }
}

#[test]
fn label_noise_lowers_base_score() {
    let clean = load("pima_indian", 300);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let clean_score = ev.evaluate(&clean).unwrap();
    let mut noisy = clean.clone();
    noise::flip_labels(&mut noisy, 0.3, 1);
    let noisy_score = ev.evaluate(&noisy).unwrap();
    assert!(
        noisy_score < clean_score,
        "30% label noise should hurt: clean {clean_score}, noisy {noisy_score}"
    );
}

#[test]
fn fastft_still_improves_under_moderate_noise() {
    let mut data = load("pima_indian", 200);
    noise::add_feature_noise(&mut data, 0.2, 2);
    data.sanitize();
    let r = FastFt::new(cfg()).fit(&data).unwrap();
    assert!(r.best_score >= r.base_score);
}

#[test]
fn noise_does_not_break_dataset_invariants() {
    let mut data = load("wine_quality_red", 200);
    noise::add_feature_noise(&mut data, 1.0, 3);
    noise::flip_labels(&mut data, 0.5, 4);
    data.sanitize();
    // Dataset::new-level invariants must still hold for downstream use.
    let rebuilt = fastft_tabular::Dataset::new(
        data.name.clone(),
        data.features.clone(),
        data.targets.clone(),
        data.task,
        data.n_classes,
    );
    assert!(rebuilt.is_ok());
}
