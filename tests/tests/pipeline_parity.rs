//! Golden-trace parity for the staged-pipeline refactor.
//!
//! These constants were captured from the pre-refactor monolithic engine
//! (`Run` in `engine.rs`, field-by-field `checkpoint.rs`) on the reference
//! configuration below. The staged pipeline must reproduce them exactly:
//! identical `RunResult` scores, bitwise-identical `StepRecord`s, the same
//! deterministic telemetry counters, and byte-identical checkpoints (after
//! zeroing the wall-clock-only telemetry fields, which legitimately differ
//! between any two runs).
//!
//! To re-capture after an *intentional* trace change, run:
//! `FASTFT_GOLDEN_CAPTURE=1 cargo test -p integration-tests --test pipeline_parity -- --nocapture`
//! and paste the printed constants.

use fastft_core::checkpoint;
use fastft_core::{FastFt, FastFtConfig, RunResult, StepRecord};
use fastft_ml::Evaluator;
use fastft_tabular::datagen;

/// FNV-1a over a byte stream, matching the checkpoint fingerprint hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn golden_data() -> fastft_tabular::Dataset {
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, 120, 0);
    d.sanitize();
    d
}

fn golden_cfg() -> FastFtConfig {
    FastFtConfig {
        episodes: 4,
        steps_per_episode: 4,
        cold_start_episodes: 2,
        retrain_every: 1,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 3, ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

/// Hash every deterministic field of the step trace.
fn records_hash(records: &[StepRecord]) -> u64 {
    let mut h = Fnv::new();
    for r in records {
        h.u64(r.episode as u64);
        h.u64(r.step as u64);
        h.f64(r.reward);
        h.f64(r.score);
        h.u64(u64::from(r.predicted));
        h.f64(r.novelty);
        h.f64(r.novelty_distance);
        h.u64(u64::from(r.new_combination));
        h.u64(r.n_features as u64);
        for e in &r.new_exprs {
            h.bytes(e.as_bytes());
        }
    }
    h.0
}

/// Hash of the run outcome: scores, per-episode curve and the
/// deterministic telemetry counters (wall times excluded).
fn result_hash(r: &RunResult) -> u64 {
    let mut h = Fnv::new();
    h.f64(r.base_score);
    h.f64(r.best_score);
    for &b in &r.episode_best {
        h.f64(b);
    }
    h.u64(records_hash(&r.records));
    let t = &r.telemetry;
    h.u64(t.downstream_evals as u64);
    h.u64(t.predictor_calls as u64);
    h.u64(t.cache_hits as u64);
    h.u64(t.cache_evictions as u64);
    h.u64(t.prefix_hits);
    h.u64(t.prefix_misses);
    h.u64(t.prefix_evictions);
    h.u64(t.score_batches);
    for &b in &t.batch_size_hist {
        h.u64(b);
    }
    h.u64(t.eval_faults as u64);
    h.u64(t.quarantined as u64);
    h.u64(t.weight_rollbacks as u64);
    h.0
}

/// Read a checkpoint, zero its wall-clock-only telemetry fields, and hash
/// the re-encoded bytes. Everything else in the file — weights, optimiser
/// moments, replay slots, RNG stream, cache recency order, histories — is
/// deterministic and layout-sensitive, so this pins both the trace *and*
/// the binary format.
fn checkpoint_hash(path: &std::path::Path) -> (u64, usize) {
    let (mut cfg, mut snap) = checkpoint::read(path).expect("readable checkpoint");
    cfg.checkpoint_path = Some(std::path::PathBuf::from("golden.ckpt"));
    snap.telemetry.optimization_secs = 0.0;
    snap.telemetry.estimation_secs = 0.0;
    snap.telemetry.evaluation_secs = 0.0;
    snap.telemetry.total_secs = 0.0;
    snap.telemetry.predictor_secs = 0.0;
    snap.telemetry.novelty_secs = 0.0;
    let bytes = checkpoint::encode(&cfg, &snap);
    let mut h = Fnv::new();
    h.bytes(&bytes);
    (h.0, bytes.len())
}

// --- golden constants (captured from the pre-refactor engine) -------------

const GOLDEN_BASE_SCORE: u64 = 0x3fe47d851b84ad0e;
const GOLDEN_BEST_SCORE: u64 = 0x3fe47d851b84ad0e;
const GOLDEN_RESULT_HASH: u64 = 0xf3d4f6f1bcf534cc;
const GOLDEN_CKPT_HASH: u64 = 0x155518a8f872640f;
const GOLDEN_CKPT_LEN: usize = 1789302;

#[test]
fn golden_trace_matches_pre_refactor_engine() {
    let data = golden_data();
    let dir = std::env::temp_dir().join(format!("fastft-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("golden.ckpt");
    let mut cfg = golden_cfg();
    cfg.checkpoint_every = 2;
    cfg.checkpoint_path = Some(ckpt.clone());
    let result = FastFt::new(cfg).fit(&data).unwrap();
    let (ckpt_hash, ckpt_len) = checkpoint_hash(&ckpt);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir(&dir).ok();

    if std::env::var("FASTFT_GOLDEN_CAPTURE").is_ok() {
        println!("const GOLDEN_BASE_SCORE: u64 = {:#018x};", result.base_score.to_bits());
        println!("const GOLDEN_BEST_SCORE: u64 = {:#018x};", result.best_score.to_bits());
        println!("const GOLDEN_RESULT_HASH: u64 = {:#018x};", result_hash(&result));
        println!("const GOLDEN_CKPT_HASH: u64 = {:#018x};", ckpt_hash);
        println!("const GOLDEN_CKPT_LEN: usize = {};", ckpt_len);
        return;
    }

    assert_eq!(result.base_score.to_bits(), GOLDEN_BASE_SCORE, "base_score drifted");
    assert_eq!(result.best_score.to_bits(), GOLDEN_BEST_SCORE, "best_score drifted");
    assert_eq!(result.records.len(), 16, "step count drifted");
    assert_eq!(
        result_hash(&result),
        GOLDEN_RESULT_HASH,
        "RunResult trace drifted from the pre-refactor engine"
    );
    assert_eq!(ckpt_len, GOLDEN_CKPT_LEN, "checkpoint byte length drifted");
    assert_eq!(
        ckpt_hash, GOLDEN_CKPT_HASH,
        "checkpoint bytes drifted from the pre-refactor format"
    );
}

/// The same trace must come out of the multi-dataset `Session` entry point
/// as out of `FastFt::fit` — the session only shares the worker pool, it
/// never perturbs a run's decision stream.
#[test]
fn session_matches_fastft_fit() {
    let data = golden_data();
    let fit = FastFt::new(golden_cfg()).fit(&data).unwrap();
    assert_eq!(result_hash(&fit), GOLDEN_RESULT_HASH);
}
