//! Degenerate-input hardening: datasets that cannot be searched are
//! rejected up front with a typed, actionable error instead of panicking
//! (or worse, silently producing NaN scores) deep inside a run — and
//! merely *awkward* data (constant columns) still completes normally.

use fastft_core::{FastFt, FastFtConfig, StopReason};
use fastft_ml::Evaluator;
use fastft_tabular::dataset::{Column, Dataset};
use fastft_tabular::{FastFtError, TaskType};

fn cfg() -> FastFtConfig {
    FastFtConfig {
        episodes: 3,
        steps_per_episode: 3,
        cold_start_episodes: 1,
        retrain_every: 2,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 2, ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

fn classification(columns: Vec<Column>, targets: Vec<f64>) -> Dataset {
    Dataset::new("degenerate", columns, targets, TaskType::Classification, 2).unwrap()
}

fn expect_invalid(data: &Dataset, needle: &str) {
    match FastFt::new(cfg()).fit(data) {
        Err(FastFtError::InvalidData(msg)) => {
            assert!(msg.contains(needle), "expected {needle:?} in: {msg}")
        }
        Err(e) => panic!("expected InvalidData, got {e:?}"),
        Ok(_) => panic!("expected InvalidData, run succeeded"),
    }
}

#[test]
fn single_row_dataset_is_rejected() {
    let data = classification(vec![Column::new("a", vec![1.0])], vec![0.0]);
    expect_invalid(&data, "row");
}

#[test]
fn nan_feature_values_are_rejected_with_a_sanitize_hint() {
    let data = classification(
        vec![
            Column::new("a", vec![1.0, f64::NAN, 3.0, 4.0]),
            Column::new("b", vec![1.0, 2.0, 3.0, 4.0]),
        ],
        vec![0.0, 1.0, 0.0, 1.0],
    );
    expect_invalid(&data, "sanitize");
}

#[test]
fn infinite_feature_values_are_rejected() {
    let data = classification(
        vec![Column::new("a", vec![1.0, f64::INFINITY, 3.0, 4.0])],
        vec![0.0, 1.0, 0.0, 1.0],
    );
    expect_invalid(&data, "sanitize");
}

#[test]
fn non_finite_targets_are_rejected() {
    let data = Dataset::new(
        "degenerate",
        vec![Column::new("a", vec![1.0, 2.0, 3.0, 4.0])],
        vec![0.5, f64::NAN, 0.25, 1.0],
        TaskType::Regression,
        0,
    )
    .unwrap();
    expect_invalid(&data, "target");
}

#[test]
fn constant_columns_complete_normally() {
    // Constant features carry no signal, but they must not crash the
    // search, the novelty estimator, or the downstream evaluator.
    let n = 40;
    let targets: Vec<f64> = (0..n).map(|i| f64::from(i % 2)).collect();
    let varying: Vec<f64> = (0..n).map(|i| f64::from(i) + f64::from(i % 2) * 10.0).collect();
    let data = classification(
        vec![
            Column::new("const_a", vec![1.0; n as usize]),
            Column::new("const_b", vec![0.0; n as usize]),
            Column::new("x", varying),
        ],
        targets,
    );
    let result = FastFt::new(cfg()).fit(&data).unwrap();
    assert_eq!(result.stop_reason, StopReason::Completed);
    assert!(result.best_score.is_finite());
    assert!(result.best_score >= result.base_score);
    assert!(result.records.iter().all(|r| r.score.is_finite() && r.reward.is_finite()));
}
