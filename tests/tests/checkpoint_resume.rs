//! Crash-safety acceptance gate: a run killed at a checkpoint boundary and
//! resumed must be bitwise-identical to the same run left uninterrupted —
//! same best score, same expressions, same per-step trace, same counters.

use fastft_core::{checkpoint, FastFt, FastFtConfig, StopReason};
use fastft_ml::Evaluator;
use fastft_tabular::{datagen, FastFtError};
use std::path::PathBuf;

fn cfg() -> FastFtConfig {
    FastFtConfig {
        episodes: 6,
        steps_per_episode: 4,
        cold_start_episodes: 2,
        retrain_every: 2,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 3, ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

fn load(name: &str, rows: usize, seed: u64) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, seed);
    d.sanitize();
    d
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fastft-it-{tag}-{}.ckpt", std::process::id()))
}

#[test]
fn kill_and_resume_is_bitwise_identical_to_uninterrupted_run() {
    let data = load("pima_indian", 200, 0);
    let full = FastFt::new(cfg()).fit(&data).unwrap();
    assert_eq!(full.stop_reason, StopReason::Completed);

    // "Crash" the same run mid-way via an evaluation budget, checkpointing
    // at every episode boundary, then resume with the budget lifted.
    let ckpt = tmp_path("parity");
    let stopped = FastFt::new(FastFtConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(ckpt.clone()),
        max_downstream_evals: 8,
        ..cfg()
    })
    .fit(&data)
    .unwrap();
    assert_eq!(stopped.stop_reason, StopReason::EvalBudget);
    assert!(stopped.records.len() < full.records.len(), "budget did not interrupt the run");

    let resumed = FastFt::resume_with(&ckpt, &data, |c| c.max_downstream_evals = 0).unwrap();
    assert_eq!(resumed.stop_reason, StopReason::Completed);

    // Bitwise parity of everything the search produced...
    assert_eq!(resumed.best_score.to_bits(), full.best_score.to_bits());
    assert_eq!(resumed.best_exprs, full.best_exprs);
    assert_eq!(resumed.records, full.records);
    assert_eq!(resumed.episode_best, full.episode_best);
    // ...and of the deterministic telemetry counters. (Prefix-cache stats
    // are excluded by design: the cache restarts cold after a resume.)
    let (a, b) = (resumed.telemetry, full.telemetry);
    assert_eq!(a.downstream_evals, b.downstream_evals);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.cache_evictions, b.cache_evictions);
    assert_eq!(a.predictor_calls, b.predictor_calls);
    assert_eq!(a.score_batches, b.score_batches);
    assert_eq!(a.batch_size_hist, b.batch_size_hist);
    assert_eq!(a.eval_faults, 0);
    assert_eq!(a.quarantined, 0);

    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_from_completed_checkpoint_returns_final_result() {
    let data = load("pima_indian", 150, 1);
    let ckpt = tmp_path("completed");
    let full = FastFt::new(FastFtConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(ckpt.clone()),
        ..cfg()
    })
    .fit(&data)
    .unwrap();

    // The last checkpoint fires on the final episode boundary, so resuming
    // it has no episodes left to run and must reproduce the final result.
    let resumed = FastFt::resume(&ckpt, &data).unwrap();
    assert_eq!(resumed.stop_reason, StopReason::Completed);
    assert_eq!(resumed.best_score.to_bits(), full.best_score.to_bits());
    assert_eq!(resumed.records, full.records);
    assert_eq!(resumed.telemetry.downstream_evals, full.telemetry.downstream_evals);

    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_rejects_a_different_dataset() {
    let data = load("pima_indian", 150, 2);
    let ckpt = tmp_path("fingerprint");
    FastFt::new(FastFtConfig {
        episodes: 2,
        checkpoint_every: 1,
        checkpoint_path: Some(ckpt.clone()),
        ..cfg()
    })
    .fit(&data)
    .unwrap();

    let other = load("svmguide3", 150, 2);
    match FastFt::resume(&ckpt, &other) {
        Err(FastFtError::InvalidData(msg)) => {
            assert!(msg.contains("fingerprint"), "unexpected message: {msg}")
        }
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }

    // Same content under a different dataset name is still accepted.
    let mut renamed = data.clone();
    renamed.name = "renamed".to_string();
    assert_eq!(checkpoint::dataset_fingerprint(&renamed), checkpoint::dataset_fingerprint(&data));
    FastFt::resume(&ckpt, &renamed).unwrap();

    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_rejects_corrupt_checkpoint_files() {
    let data = load("pima_indian", 150, 3);
    let ckpt = tmp_path("corrupt");

    // Not a checkpoint at all.
    std::fs::write(&ckpt, b"definitely not a checkpoint").unwrap();
    assert!(matches!(FastFt::resume(&ckpt, &data), Err(FastFtError::Parse(_))));

    // A real checkpoint, truncated.
    FastFt::new(FastFtConfig {
        episodes: 2,
        checkpoint_every: 1,
        checkpoint_path: Some(ckpt.clone()),
        ..cfg()
    })
    .fit(&data)
    .unwrap();
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(FastFt::resume(&ckpt, &data), Err(FastFtError::Parse(_))));

    // Missing file maps to an I/O error, not a panic.
    std::fs::remove_file(&ckpt).ok();
    assert!(matches!(FastFt::resume(&ckpt, &data), Err(FastFtError::Io { .. })));
}

#[test]
fn wall_clock_budget_returns_best_so_far() {
    let data = load("pima_indian", 150, 4);
    let result = FastFt::new(FastFtConfig { max_wall_secs: 1e-9, ..cfg() }).fit(&data).unwrap();
    assert_eq!(result.stop_reason, StopReason::WallClock);
    assert!(result.best_score.is_finite());
    assert!(result.best_score >= result.base_score);
}
