//! Exact-vs-histogram parity across the downstream tree stack: the
//! histogram backend must deliver its speedup without moving the scores
//! the rest of the system optimises against, and must keep the PR-1
//! worker-count determinism contract.

use fastft_ml::evaluator::ModelKind;
use fastft_ml::tree::SplitMethod;
use fastft_ml::Evaluator;
use fastft_runtime::Runtime;
use fastft_tabular::datagen;

fn load_seeded(name: &str, rows: usize, seed: u64) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, seed);
    d.sanitize();
    d
}

fn load(name: &str, rows: usize) -> fastft_tabular::Dataset {
    load_seeded(name, rows, 0)
}

fn eval_with(model: ModelKind, method: SplitMethod, data: &fastft_tabular::Dataset) -> f64 {
    let ev = Evaluator { model, folds: 3, split_method: method, ..Evaluator::default() };
    ev.evaluate(data).unwrap()
}

/// CV scores from the binned backend stay within 0.01 of the exact
/// baseline on the planted-interaction generators, for every tree-stack
/// model and every task family the evaluator serves. Scores are averaged
/// over several generator seeds so the comparison captures the systematic
/// backend difference, not single-fold noise.
#[test]
fn histogram_scores_match_exact_within_tolerance() {
    let specs: [(&str, usize); 4] = [
        ("pima_indian", 400), // classification
        ("svmguide3", 400),   // classification, wider
        ("openml_589", 400),  // regression (1-RAE)
        ("thyroid", 500),     // detection (AUC)
    ];
    // Ensembles average away threshold jitter and get the tight bound; a
    // single tree's score (especially detection AUC, ranked off a handful
    // of leaf probabilities) is granular, so it gets a looser one.
    let models = [
        (ModelKind::RandomForest, 0.01),
        (ModelKind::GradientBoosting, 0.01),
        (ModelKind::DecisionTree, 0.03),
    ];
    const SEEDS: u64 = 5;
    for (name, rows) in specs {
        for (model, tolerance) in models {
            let mut exact_mean = 0.0;
            let mut hist_mean = 0.0;
            for seed in 0..SEEDS {
                let data = load_seeded(name, rows, seed);
                exact_mean += eval_with(model, SplitMethod::Exact, &data);
                hist_mean += eval_with(model, SplitMethod::default(), &data);
            }
            exact_mean /= SEEDS as f64;
            hist_mean /= SEEDS as f64;
            assert!(
                (exact_mean - hist_mean).abs() <= tolerance,
                "{model:?} on {name}: exact {exact_mean} vs histogram {hist_mean}"
            );
        }
    }
}

/// Coarse binning trades accuracy for speed but must degrade gracefully,
/// not collapse.
#[test]
fn coarse_bins_stay_close_to_exact() {
    let data = load("pima_indian", 400);
    let exact = eval_with(ModelKind::RandomForest, SplitMethod::Exact, &data);
    let coarse = eval_with(ModelKind::RandomForest, SplitMethod::Histogram { max_bins: 16 }, &data);
    assert!((exact - coarse).abs() <= 0.05, "exact {exact} vs 16-bin {coarse}");
}

/// PR-1 contract, extended to the histogram backend: the same seed gives
/// byte-identical scores at any worker count, in both split modes.
#[test]
fn evaluator_deterministic_across_worker_counts_in_both_modes() {
    let data = load("pima_indian", 300);
    let rt1 = Runtime::new(1);
    let rt4 = Runtime::new(4);
    for method in [SplitMethod::Exact, SplitMethod::default()] {
        for model in [ModelKind::RandomForest, ModelKind::GradientBoosting] {
            let ev = Evaluator { model, folds: 3, split_method: method, ..Evaluator::default() };
            let a = ev.evaluate_with(&rt1, &data).unwrap();
            let b = ev.evaluate_with(&rt4, &data).unwrap();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{model:?}/{method:?} differs across worker counts: {a} vs {b}"
            );
        }
    }
}

/// The two backends are interchangeable mid-system: repeated evaluation
/// with the same backend is reproducible (no hidden state leaks from the
/// shared binning caches).
#[test]
fn histogram_evaluation_is_repeatable() {
    let data = load("svmguide3", 250);
    let ev = Evaluator { folds: 3, ..Evaluator::default() };
    let a = ev.evaluate(&data).unwrap();
    let b = ev.evaluate(&data).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}
