//! End-to-end integration: the full FASTFT pipeline against the synthetic
//! benchmark analogs, checking cross-crate invariants the unit tests can't
//! see — the best dataset, its expressions and the reported score must all
//! agree when re-derived from scratch.

use fastft_core::{FastFt, FastFtConfig};
use fastft_ml::Evaluator;
use fastft_tabular::datagen;

fn cfg() -> FastFtConfig {
    FastFtConfig {
        episodes: 5,
        steps_per_episode: 5,
        cold_start_episodes: 2,
        retrain_every: 2,
        retrain_epochs: 8,
        evaluator: Evaluator { folds: 3, ..Evaluator::default() },
        ..FastFtConfig::default()
    }
}

fn load(name: &str, rows: usize, seed: u64) -> fastft_tabular::Dataset {
    let spec = datagen::by_name(name).unwrap();
    let mut d = datagen::generate_capped(spec, rows, seed);
    d.sanitize();
    d
}

#[test]
fn best_score_is_reproducible_from_best_dataset() {
    let data = load("pima_indian", 250, 0);
    let result = FastFt::new(cfg()).fit(&data).unwrap();
    // Re-evaluate the returned dataset with the same evaluator: must match
    // the reported best exactly (same folds, same seed).
    let re = cfg().evaluator.evaluate(&result.best_dataset).unwrap();
    assert!(
        (re - result.best_score).abs() < 1e-12,
        "reported {} but re-evaluation gives {re}",
        result.best_score
    );
}

#[test]
fn best_exprs_regenerate_best_dataset() {
    let data = load("pima_indian", 200, 1);
    let result = FastFt::new(cfg()).fit(&data).unwrap();
    let base: Vec<Vec<f64>> = data.features.iter().map(|c| c.values.clone()).collect();
    for (expr, col) in result.best_exprs.iter().zip(&result.best_dataset.features) {
        let mut regen = expr.eval(&base);
        fastft_core::transform::sanitize_column(&mut regen);
        for (a, b) in regen.iter().zip(&col.values) {
            assert!((a - b).abs() < 1e-9, "{expr} column mismatch");
        }
    }
}

#[test]
fn fastft_finds_planted_interactions_better_than_random() {
    // On the planted-interaction generator, FASTFT's guided search should
    // beat pure random generation given the same downstream evaluator, on
    // the majority of seeds.
    use fastft_baselines::{expansion::Rfg, FeatureTransformMethod, RunContext};
    let evaluator = Evaluator { folds: 3, ..Evaluator::default() };
    let rt = fastft_runtime::Runtime::new(1);
    let mut wins = 0;
    for seed in 0..3 {
        let data = load("openml_620", 250, seed);
        let fast = FastFt::new(FastFtConfig { seed, ..cfg() }).fit(&data).unwrap();
        let rfg = Rfg::default().run(&data, &RunContext::new(&evaluator, &rt, seed)).unwrap();
        if fast.best_score >= rfg.score {
            wins += 1;
        }
    }
    assert!(wins >= 2, "FASTFT beat RFG on only {wins}/3 seeds");
}

#[test]
fn all_task_types_improve_or_match_base() {
    for (name, rows) in [("svmguide3", 250), ("openml_589", 250), ("mammography", 500)] {
        let data = load(name, rows, 2);
        let r = FastFt::new(cfg()).fit(&data).unwrap();
        assert!(
            r.best_score >= r.base_score,
            "{name}: best {} < base {}",
            r.best_score,
            r.base_score
        );
    }
}

#[test]
fn telemetry_accounts_for_downstream_evaluations() {
    let data = load("pima_indian", 200, 3);
    let r = FastFt::new(cfg()).fit(&data).unwrap();
    // Every evaluated (non-predicted) step plus the base evaluation either
    // hit the downstream model or the memo cache — nothing is unaccounted.
    let evaluated_steps = r.records.iter().filter(|x| !x.predicted).count();
    assert_eq!(evaluated_steps + 1, r.telemetry.downstream_evals + r.telemetry.cache_hits);
}

#[test]
fn run_is_deterministic_across_processes_shape() {
    let data = load("wine_quality_red", 200, 4);
    let a = FastFt::new(cfg()).fit(&data).unwrap();
    let b = FastFt::new(cfg()).fit(&data).unwrap();
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(
        a.best_exprs.iter().map(ToString::to_string).collect::<Vec<_>>(),
        b.best_exprs.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}
