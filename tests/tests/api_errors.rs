//! The redesigned error-returning API surface: every fallible entry point
//! reports a typed [`FastFtError`] instead of panicking, and the validating
//! builder is the supported construction path for custom configurations.

use fastft_core::{FastFt, FastFtConfig};
use fastft_ml::Evaluator;
use fastft_tabular::{csvio, datagen, Column, Dataset, FastFtError, TaskType};
use std::path::Path;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fastft-api-errors");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn malformed_csv_cell_is_a_parse_error() {
    let p = tmp("bad_cell.csv");
    std::fs::write(&p, "a,b,target\n1.0,2.0,0\nnot_a_number,4.0,1\n").unwrap();
    let err = csvio::read_csv(&p, "bad", TaskType::Classification, 2).unwrap_err();
    assert!(matches!(err, FastFtError::Parse(_)), "got {err:?}");
}

#[test]
fn missing_csv_file_is_an_io_error_with_path() {
    let p = Path::new("/nonexistent/fastft/input.csv");
    let err = csvio::read_csv(p, "missing", TaskType::Classification, 2).unwrap_err();
    match err {
        FastFtError::Io { path, .. } => assert!(path.contains("input.csv")),
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn ragged_columns_are_invalid_data() {
    let cols = vec![Column::new("a", vec![1.0, 2.0, 3.0]), Column::new("b", vec![1.0, 2.0])];
    let err =
        Dataset::new("ragged", cols, vec![0.0, 1.0, 0.0], TaskType::Classification, 2).unwrap_err();
    assert!(matches!(err, FastFtError::InvalidData(_)), "got {err:?}");
}

#[test]
fn builder_rejects_out_of_range_settings() {
    let err = FastFtConfig::builder().alpha(250.0).build().unwrap_err();
    assert!(matches!(err, FastFtError::InvalidConfig(_)), "got {err:?}");
    let err = FastFtConfig::builder().episodes(0).build().unwrap_err();
    assert!(matches!(err, FastFtError::InvalidConfig(_)));
    let err = FastFtConfig::builder().eps_start(0.01).eps_end(0.5).build().unwrap_err();
    assert!(matches!(err, FastFtError::InvalidConfig(_)));
}

#[test]
fn builder_produces_a_runnable_config() {
    let cfg = FastFtConfig::builder()
        .episodes(2)
        .steps_per_episode(3)
        .cold_start_episodes(1)
        .evaluator(Evaluator { folds: 3, ..Evaluator::default() })
        .threads(1)
        .build()
        .unwrap();
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, 120, 0);
    d.sanitize();
    let r = FastFt::new(cfg).fit(&d).unwrap();
    assert!(r.best_score >= r.base_score);
}

#[test]
fn fit_surfaces_invalid_config_instead_of_panicking() {
    let cfg = FastFtConfig { gamma: 2.0, ..FastFtConfig::quick() };
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, 100, 0);
    d.sanitize();
    let err = FastFt::new(cfg).fit(&d).unwrap_err();
    assert!(matches!(err, FastFtError::InvalidConfig(_)), "got {err:?}");
}

#[test]
fn fit_rejects_dataset_without_features() {
    let d = Dataset::new("empty", Vec::new(), vec![0.0, 1.0], TaskType::Classification, 2).unwrap();
    let err = FastFt::new(FastFtConfig::quick()).fit(&d).unwrap_err();
    assert!(matches!(err, FastFtError::InvalidData(_)), "got {err:?}");
}

#[test]
fn errors_display_with_context() {
    let err = FastFtConfig::builder().mi_bins(1).build().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invalid config"), "{msg}");
    assert!(msg.contains("mi_bins"), "{msg}");
}
