//! Parity suite for the fused NN hot path (PR 3).
//!
//! The fused kernels, batched inference, prefix-cached scoring, and
//! minibatch training are pure performance work: every one of them must
//! produce **bitwise identical** numbers to the straightforward reference
//! path. Each test here pins one of those equivalences at the integration
//! level, across crate boundaries.

use fastft_core::novelty::NoveltyEstimator;
use fastft_core::predictor::{PerformancePredictor, PredictorConfig};
use fastft_core::scoring::PrefixCache;
use fastft_nn::gradcheck::{assert_close, central_difference};
use fastft_nn::lstm::Lstm;
use fastft_nn::matrix::Matrix;
use fastft_nn::{init, reference, EncoderKind, SequenceRegressor};
use fastft_runtime::Runtime;

fn test_input(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.37).sin() * 0.8).collect();
    Matrix::from_vec(rows, cols, data)
}

fn sequences() -> Vec<Vec<usize>> {
    vec![
        vec![1, 2, 3],
        vec![1, 2, 3, 4, 5],
        vec![1, 2, 3, 4, 5, 6, 7],
        vec![9, 8, 7, 6],
        vec![5],
        vec![2, 2, 2, 2, 2, 2, 2, 2, 2],
    ]
}

fn encoder_kinds() -> Vec<EncoderKind> {
    vec![
        EncoderKind::Lstm { layers: 2 },
        EncoderKind::Gru { layers: 2 },
        EncoderKind::Rnn { layers: 1 },
        EncoderKind::Transformer { blocks: 1, heads: 2 },
    ]
}

#[test]
fn fused_forward_matches_unfused_reference() {
    let mut rng = init::rng(11);
    let x = test_input(9, 6);
    let lstm = Lstm::new(6, 8, 2, &mut rng);
    assert_eq!(lstm.infer(&x).data, reference::lstm_forward(&lstm, &x).data);
    let gru = fastft_nn::gru::Gru::new(6, 8, 2, &mut rng);
    assert_eq!(gru.infer(&x).data, reference::gru_forward(&gru, &x).data);
    let rnn = fastft_nn::rnn::Rnn::new(6, 8, 2, &mut rng);
    assert_eq!(rnn.infer(&x).data, reference::rnn_forward(&rnn, &x).data);
}

/// Check the fused backward against central differences computed with the
/// *unfused* reference forward: if the fused forward or backward deviated
/// from the reference semantics, the gradients would not match.
#[test]
fn fused_backward_gradchecks_against_reference_forward() {
    let mut rng = init::rng(13);
    let x = test_input(6, 4);
    let mut net = Lstm::new(4, 5, 2, &mut rng);
    let out = net.forward(&x);
    let d_out = Matrix::from_vec(out.rows, out.cols, vec![1.0; out.rows * out.cols]);
    net.backward(&d_out);
    let analytic: Vec<Vec<f64>> = net.parameters().iter().map(|t| t.grad.data.clone()).collect();
    for (p, grads) in analytic.iter().enumerate() {
        let n = grads.len();
        for e in [0, n / 2, n - 1] {
            let numeric = central_difference(
                |d| {
                    net.parameters()[p].value.data[e] += d;
                    let loss: f64 = reference::lstm_forward(&net, &x).data.iter().sum();
                    net.parameters()[p].value.data[e] -= d;
                    loss
                },
                1e-5,
            );
            assert_close(grads[e], numeric, 1e-5, &format!("param {p} elem {e}"));
        }
    }
}

#[test]
fn predict_batch_is_bitwise_identical_to_predict() {
    let seqs = sequences();
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    for kind in encoder_kinds() {
        let net = SequenceRegressor::new(12, 8, 8, kind, &[6, 1], 1e-3, 17);
        let batched = net.predict_batch(&refs);
        for (seq, row) in seqs.iter().zip(&batched) {
            assert_eq!(row, &net.predict(seq), "{kind:?} {seq:?}");
        }
    }
}

#[test]
fn prefix_cached_scoring_is_bitwise_identical_to_cold() {
    for kind in encoder_kinds() {
        let net = SequenceRegressor::new(12, 8, 8, kind, &[6, 1], 1e-3, 19);
        let mut cache = PrefixCache::new(32);
        // Score a growing sequence twice: the second pass runs entirely from
        // cached prefix states.
        let full: Vec<usize> = vec![1, 4, 2, 8, 5, 7, 1, 3];
        for _ in 0..2 {
            for l in 1..=full.len() {
                let mut got = [0.0];
                cache.score_into(&net, &full[..l], &mut got);
                assert_eq!(got[0], net.predict(&full[..l])[0], "{kind:?} len {l}");
            }
        }
    }
}

#[test]
fn predictor_cached_and_batched_paths_match_plain_predict() {
    let mut p = PerformancePredictor::new(12, PredictorConfig::default(), 23);
    let seqs = sequences();
    for seq in &seqs {
        assert_eq!(p.predict_cached(seq), p.predict(seq));
    }
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let mut out = vec![0.0; seqs.len()];
    p.predict_batch(&refs, &mut out);
    for (seq, got) in seqs.iter().zip(&out) {
        assert_eq!(*got, p.predict(seq));
    }
    // Training invalidates the cache; the cached path must track the new
    // weights instead of serving stale states.
    p.train_step(&seqs[0], 0.5);
    for seq in &seqs {
        assert_eq!(p.predict_cached(seq), p.predict(seq));
    }
}

#[test]
fn novelty_cached_path_matches_plain_novelty() {
    let mut ne = NoveltyEstimator::new(12, PredictorConfig::default(), 29);
    let seqs = sequences();
    for seq in &seqs {
        assert_eq!(ne.novelty_cached(seq), ne.novelty(seq));
    }
    ne.train_step(&seqs[0]);
    for seq in &seqs {
        assert_eq!(ne.novelty_cached(seq), ne.novelty(seq), "stale cache after training");
    }
}

#[test]
fn minibatch_training_is_identical_across_worker_counts() {
    let seqs = sequences();
    let items: Vec<(&[usize], f64)> =
        seqs.iter().enumerate().map(|(i, s)| (s.as_slice(), 0.1 * i as f64)).collect();
    let train = |threads: usize| {
        let mut p = PerformancePredictor::new(12, PredictorConfig::default(), 31);
        let mut ne = NoveltyEstimator::new(12, PredictorConfig::default(), 31);
        let rt = Runtime::new(threads);
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let mut losses = Vec::new();
        for _ in 0..3 {
            losses.push(p.train_minibatch(&items, &rt));
            losses.push(ne.train_minibatch(&refs, &rt));
        }
        let preds: Vec<f64> = seqs.iter().map(|s| p.predict(s)).collect();
        let novs: Vec<f64> = seqs.iter().map(|s| ne.novelty(s)).collect();
        (losses, preds, novs)
    };
    let serial = train(1);
    for threads in [2, 4] {
        assert_eq!(train(threads), serial, "threads {threads}");
    }
}
