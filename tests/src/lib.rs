//! Host crate for the cross-crate integration tests; the test modules live
//! in the sibling `tests/` directory.
